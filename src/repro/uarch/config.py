"""CPU model configurations -- the five machines of the paper's Table 2.

Each :class:`CpuModel` bundles pipeline geometry, latency parameters, and
the *vulnerability flags* that decide which attacks succeed where:

======================  =======================================================
flag                    attack gated on it
======================  =======================================================
meltdown_vulnerable     TET-MD (Skylake/Kaby Lake yes; Comet/Raptor Lake and
                        Zen 3 are fixed -> Table 2's TET-MD ✗ columns)
mds_vulnerable          TET-ZBL (same split)
fill_tlb_on_fault       TET-KASLR (Intel loads TLB entries even for illegal
                        access to mapped addresses, §4.5; AMD does not ->
                        TET-KASLR ✗ on Zen 3)
has_tsx                 whether ``xbegin`` suppression is available; signal
                        handlers are always available
smt                     whether the §4.4 SMT covert channel applies
======================  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.memory.cache import CacheGeometry


@dataclass(frozen=True)
class CpuModel:
    """Static description of one simulated CPU."""

    name: str
    vendor: str  # "intel" | "amd"
    microarch: str
    microcode: str
    kernel: str  # the Ubuntu kernel of Table 2 (cosmetic, printed in benches)
    nominal_ghz: float

    # Pipeline geometry
    issue_width: int = 4
    retire_width: int = 4
    rob_size: int = 224
    rs_size: int = 97
    load_ports: int = 2
    store_ports: int = 1
    alu_ports: int = 4
    branch_ports: int = 1

    # Latency parameters (cycles)
    mispredict_resteer: int = 14  # frontend resteer after a clear
    recovery_tail: int = 10  # allocator recovery after a resteer
    fault_raise_delay: int = 60  # retire-slot -> exception microcode entry
    #   (Meltdown-class transient windows are tens of cycles long; the
    #    fault is only signalled once the exception microcode engages)
    fault_flush_base: int = 24  # pipeline flush on a retired fault
    flush_drain_per_uop: float = 0.75  # ROB deallocation drain per transient uop
    branch_drain_per_uop: float = 0.4  # RAT-walk drain per squashed wrong-path uop
    nested_clear_flush_penalty: int = 8  # serialised recovery when a flush meets
    #                                      an in-window resteer (Whisper's +)
    tsx_abort_latency: int = 140
    signal_dispatch_latency: int = 420  # kernel #PF -> signal -> handler -> resume
    mite_line_penalty: int = 3  # extra cycles per fetch line decoded by MITE
    ms_switch_penalty: int = 2  # DSB/MITE -> MS switch cost

    # Memory geometry
    l1d: CacheGeometry = field(default_factory=lambda: CacheGeometry("L1", 32 * 1024, 8, 4))
    l1i: CacheGeometry = field(default_factory=lambda: CacheGeometry("L1I", 32 * 1024, 8, 4))
    l2: CacheGeometry = field(default_factory=lambda: CacheGeometry("L2", 256 * 1024, 8, 12))
    llc: CacheGeometry = field(default_factory=lambda: CacheGeometry("LLC", 8 * 1024 * 1024, 16, 42))
    dram_latency: int = 180
    dtlb_entries_4k: int = 64
    dtlb_entries_2m: int = 32
    dsb_lines: int = 64  # uop-cache capacity in fetch lines

    # Vulnerability flags (what Table 2 is really about)
    meltdown_vulnerable: bool = True
    mds_vulnerable: bool = True
    fill_tlb_on_fault: bool = True
    has_tsx: bool = True
    smt: bool = True

    def cache_geometries(self) -> Tuple[CacheGeometry, CacheGeometry, CacheGeometry, CacheGeometry]:
        """(L1D, L1I, L2, LLC) geometry tuple for building a hierarchy."""
        return self.l1d, self.l1i, self.l2, self.llc

    def seconds(self, cycles: int) -> float:
        """Convert simulated *cycles* to simulated wall-clock seconds."""
        return cycles / (self.nominal_ghz * 1e9)


def _intel(name: str, **overrides) -> CpuModel:
    return replace(
        CpuModel(
            name=name,
            vendor="intel",
            microarch=overrides.pop("microarch"),
            microcode=overrides.pop("microcode"),
            kernel=overrides.pop("kernel"),
            nominal_ghz=overrides.pop("nominal_ghz"),
        ),
        **overrides,
    )


#: Table 2's test machines.
CPU_MODELS: Dict[str, CpuModel] = {
    "i7-6700": _intel(
        "Intel Core i7-6700",
        microarch="Skylake",
        microcode="0xf0",
        kernel="4.15.0-213",
        nominal_ghz=3.4,
        meltdown_vulnerable=True,
        mds_vulnerable=True,
        fill_tlb_on_fault=True,
        has_tsx=True,
    ),
    "i7-7700": _intel(
        "Intel Core i7-7700",
        microarch="Kaby Lake",
        microcode="0x5e",
        kernel="5.4.0-150",
        nominal_ghz=3.6,
        meltdown_vulnerable=True,
        mds_vulnerable=True,
        fill_tlb_on_fault=True,
        has_tsx=True,
    ),
    "i9-10980XE": _intel(
        "Intel Core i9-10980XE",
        microarch="Comet Lake",  # Cascade Lake-X family; paper lists Comet Lake
        microcode="0x5003303",
        kernel="5.15.0-72",
        nominal_ghz=3.0,
        rob_size=224,
        meltdown_vulnerable=False,  # hardware-fixed: TET-MD ✗ in Table 2
        mds_vulnerable=False,  # hardware-fixed: TET-ZBL ✗
        fill_tlb_on_fault=True,  # TET-KASLR ✓
        has_tsx=True,
    ),
    "i9-13900K": _intel(
        "Intel Core i9-13900K",
        microarch="Raptor Lake",
        microcode="0x119",
        kernel="5.15.0-86",
        nominal_ghz=5.8,
        issue_width=6,
        retire_width=8,
        rob_size=512,
        rs_size=205,
        alu_ports=5,
        load_ports=3,
        meltdown_vulnerable=False,
        mds_vulnerable=False,
        fill_tlb_on_fault=True,  # paper marks TET-KASLR "?" here; see benches
        has_tsx=False,  # TSX fused off on client Raptor Lake
    ),
    "ryzen-5600G": CpuModel(
        name="AMD Ryzen 5 5600G",
        vendor="amd",
        microarch="Zen 3",
        microcode="0xA50000D",
        kernel="5.15.0-76",
        nominal_ghz=3.9,
        issue_width=6,
        retire_width=8,
        rob_size=256,
        rs_size=96,
        mispredict_resteer=13,
        meltdown_vulnerable=False,  # AMD never had Meltdown
        mds_vulnerable=False,  # nor MDS
        fill_tlb_on_fault=False,  # permission is checked before TLB fill:
        #                           TET-KASLR ✗ on Zen 3 (Table 2)
        has_tsx=False,
    ),
    "ryzen-5900": CpuModel(
        name="AMD Ryzen 9 5900",
        vendor="amd",
        microarch="Zen 3",
        microcode="0xA50000D",
        kernel="5.15.0-76",
        nominal_ghz=3.7,
        issue_width=6,
        retire_width=8,
        rob_size=256,
        rs_size=96,
        mispredict_resteer=13,
        meltdown_vulnerable=False,
        mds_vulnerable=False,
        fill_tlb_on_fault=False,
        has_tsx=False,
    ),
}


def cpu_model(key: str) -> CpuModel:
    """Look up a CPU model by short key (e.g. ``"i7-7700"``).

    Accepts the short keys of :data:`CPU_MODELS` or a full model name.
    """
    if key in CPU_MODELS:
        return CPU_MODELS[key]
    for model in CPU_MODELS.values():
        if model.name == key:
            return model
    raise KeyError(f"unknown CPU model {key!r}; known: {sorted(CPU_MODELS)}")
