"""The event-driven out-of-order core.

Instead of stepping every pipeline stage every cycle, the engine dispatches
instructions in fetch order, stamping each with the cycles at which it was
delivered, issued, completed and retired; speculation is tracked as a stack
of *contexts* that later squash the uops dispatched under them.  The model
is event-accurate where it matters to Whisper:

* a fault is raised when the faulting uop reaches the ROB head plus an
  exception-entry delay, and the flush must **drain** the transient uops in
  flight and any **in-progress mispredict recovery** -- the two mechanisms
  whose balance gives TET its sign (longer for the Figure 1a gadget,
  shorter for the ZombieLoad gadget);
* branch mispredicts (conditional or RSB) redirect fetch after a resteer
  penalty, even when the branch itself is transient, and speculatively
  train the predictor;
* transient loads keep their real microarchitectural side effects (cache
  fills, TLB fills, LFB entries) while their architectural effects are
  rolled back.

Every timing side effect lands in the :class:`~repro.uarch.pmu.PmuCounters`
bank so the PMU toolset sees the same picture the paper's Table 3 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from operator import attrgetter
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.isa.opcodes import Op, UopClass
from repro.isa.program import INSTRUCTION_SIZE, Program
from repro.isa.registers import RegisterFile
from repro.memory.mmu import Fault, FaultKind, Mmu
from repro.uarch.bpu import BranchPredictor
from repro.uarch.config import CpuModel
from repro.uarch.frontend import Frontend
from repro.uarch.plan import plan_for
from repro.uarch.pmu import PmuCounters
from repro.uarch.uop import (
    FlushEvent,
    RedirectEvent,
    ResolutionEvent,
    RunEvents,
    UopRecord,
)

MASK64 = (1 << 64) - 1

#: Sentinel for "key was absent" in side-journal undo entries.
_ABSENT = object()

#: Key for picking the oldest unresolved speculation context (hoisted so
#: the main loop does not rebuild a lambda per instruction).
_CTX_RESOLVE_CYCLE = attrgetter("resolve_cycle")


class SimulationError(RuntimeError):
    """The simulated program did something the model cannot continue from
    (unhandled fault, fetch off the program, malformed TSX nesting...)."""


class _Snapshot:
    """Speculative state captured at a potential squash point.

    Copy-on-write: instead of deep-copying the register file and the
    readiness maps (the old design -- O(architectural state) per
    mispredict), a snapshot is two O(1) journal marks plus a handful of
    scalars.  Restoring replays the journals backwards, so a squash
    costs what the transient work cost.
    """

    __slots__ = (
        "reg_mark",
        "side_mark",
        "flag_ready",
        "serialize_until",
        "max_ready",
        "undo_index",
    )

    def __init__(
        self,
        reg_mark: int,
        side_mark: int,
        flag_ready: int,
        serialize_until: int,
        max_ready: int,
        undo_index: int,
    ) -> None:
        #: Mark into the register file's own undo journal (registers and
        #: flags -- kept inside :class:`RegisterFile` so external
        #: mutators like the syscall handler are journaled too).
        self.reg_mark = reg_mark
        #: Mark into the engine's side journal (reg_ready / store_ready /
        #: TSX-stack mutations).
        self.side_mark = side_mark
        self.flag_ready = flag_ready
        self.serialize_until = serialize_until
        self.max_ready = max_ready
        self.undo_index = undo_index


class _TsxContext:
    """An open hardware transaction."""

    __slots__ = ("xbegin_seq", "fallback_pc", "reg_mark", "undo_index")

    def __init__(
        self, xbegin_seq: int, fallback_pc: int, reg_mark: int, undo_index: int
    ) -> None:
        self.xbegin_seq = xbegin_seq
        self.fallback_pc = fallback_pc
        #: Register-journal mark at ``xbegin`` (an abort rolls back here).
        self.reg_mark = reg_mark
        self.undo_index = undo_index


class _SpecContext:
    """An unresolved speculation: a mispredicted branch or a pending fault."""

    __slots__ = (
        "kind",
        "trigger_seq",
        "resolve_cycle",
        "resume_pc",
        "snapshot",
        "branch_kind",
        "suppression",
        "fault",
        "tsx",
        "tsx_index",
        "nested_clears",
    )

    def __init__(
        self,
        kind: str,  # "branch" | "fault"
        trigger_seq: int,
        resolve_cycle: int,
        resume_pc: int,
        snapshot: _Snapshot,
        branch_kind: str = "",  # conditional | return | underflow
        suppression: str = "",  # fault contexts: tsx | signal
        fault: Optional[Fault] = None,
        tsx: Optional[_TsxContext] = None,
        tsx_index: int = -1,
    ) -> None:
        self.kind = kind
        self.trigger_seq = trigger_seq
        self.resolve_cycle = resolve_cycle
        self.resume_pc = resume_pc
        self.snapshot = snapshot
        self.branch_kind = branch_kind
        self.suppression = suppression
        self.fault = fault
        self.tsx = tsx
        self.tsx_index = tsx_index
        self.nested_clears = 0


@dataclass
class RunResult:
    """Everything one :meth:`Core.run` produced."""

    start_cycle: int
    end_cycle: int
    instructions_retired: int
    uops_issued: int
    regs: RegisterFile
    halted: bool
    events: RunEvents
    faults: List[Fault] = field(default_factory=list)
    records: Optional[List[UopRecord]] = None

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle


class Core:
    """One logical processor of a simulated CPU."""

    def __init__(
        self,
        model: CpuModel,
        mmu: Mmu,
        pmu: Optional[PmuCounters] = None,
        bpu: Optional[BranchPredictor] = None,
        thread_id: int = 0,
    ) -> None:
        self.model = model
        self.mmu = mmu
        self.pmu = pmu or PmuCounters()
        self.bpu = bpu or BranchPredictor()
        self.frontend = Frontend(model, mmu, self.pmu)
        self.thread_id = thread_id
        self.global_cycle = 0
        #: PC of the registered SIGSEGV handler (None = faults are fatal
        #: unless a transaction is open).  Set by the kernel substrate.
        self.signal_handler_pc: Optional[int] = None
        #: Optional syscall hook: called with the speculative register
        #: file; may mutate it (the kernel substrate installs this).
        self.syscall_handler: Optional[Callable[[RegisterFile], None]] = None
        #: Disruption windows (start, end) this core inflicted on shared
        #: SMT resources: flushes, recoveries, signal dispatches (§4.4).
        self.disruptions: List[Tuple[int, int]] = []

    def reset_uarch(self) -> None:
        """Restore the core to a just-booted timing profile.

        Fresh predictor state, empty frontend (DSB included), zeroed PMU
        bank, cycle counter back at zero, no signal handler, no recorded
        disruptions.  Paired with :meth:`Mmu.reset_uarch` this makes a
        reused machine time-indistinguishable from a freshly built one.
        """
        self.pmu.reset()
        self.bpu = BranchPredictor()
        self.frontend = Frontend(self.model, self.mmu, self.pmu)
        self.global_cycle = 0
        self.signal_handler_pc = None
        self.disruptions = []

    def run(
        self,
        program: Program,
        regs: Optional[Dict[str, int]] = None,
        entry: Optional[int] = None,
        user: bool = True,
        max_instructions: int = 200_000,
        record_trace: bool = False,
        decode_plan: bool = True,
    ) -> RunResult:
        """Run *program* until ``hlt`` retires or *max_instructions*.

        *regs* seeds the architectural register file.  The core's cycle
        counter continues across calls, so ``rdtsc`` values from repeated
        runs form one timeline (the covert-channel receivers rely on it).

        ``decode_plan=True`` (the default) dispatches through the cached
        :class:`~repro.uarch.plan.DecodedPlan` for this program/model;
        ``decode_plan=False`` keeps the legacy per-fetch decode path.
        Both paths produce bit-identical results (the decode-plan
        property suite asserts it).
        """
        plan = plan_for(program, self.model, _OP_HANDLERS) if decode_plan else None
        engine = _RunEngine(self, program, regs or {}, entry, user, max_instructions, plan)
        if record_trace:
            # Arm the MMU's translation breadcrumbs alongside the uop
            # trace: the batch executor's page-table shadow replays both
            # streams in lockstep.  try/finally so a faulting run cannot
            # leave the hot path paying for logging.
            mmu = self.mmu
            mmu.translation_log = engine.events.translations
            mmu.walker.record_details = True
            try:
                result = engine.execute()
            finally:
                mmu.translation_log = None
                mmu.walker.record_details = False
            result.records = engine.records
        else:
            result = engine.execute()
        self.global_cycle = result.end_cycle + 1
        return result

    def telemetry_counters(self) -> Dict[str, int]:
        """Per-trial counters for the telemetry layer (read-only).

        :meth:`reset_uarch` zeroes the PMU bank and the cycle counter at
        the top of every trial, so the current values *are* this trial's
        deltas -- no before-snapshot, no new branches on the hot path.
        Every value here is deterministic for a fixed trial payload
        (part of the telemetry determinism contract); process-cumulative
        statistics like the decode-plan cache live elsewhere
        (:data:`repro.uarch.plan.PLAN_STATS`).
        """
        counts = self.pmu.counts
        return {
            "cycles": self.global_cycle,
            "uops_issued": counts["UOPS_ISSUED.ANY"],
            "uops_retired": counts["UOPS_RETIRED.RETIRE_SLOTS"],
            "machine_clears": counts["MACHINE_CLEARS.COUNT"],
            "recovery_cycles": counts["INT_MISC.RECOVERY_CYCLES"],
            "resteer_cycles": counts["INT_MISC.CLEAR_RESTEER_CYCLES"],
            "dtlb_walks": counts["DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK"],
            "llc_misses": counts["LONGEST_LAT_CACHE.MISS"],
            "l1_misses": counts["MEM_LOAD_RETIRED.L1_MISS"],
            # Not a PMU event: the cache hierarchy counts clflush traffic
            # directly (reset_uarch zeroes it alongside the PMU bank), so
            # the detection layer sees flush activity through the same
            # snapshot as everything else instead of poking the machine.
            "clflushes": self.mmu.hierarchy.clflush_count,
        }


class _RunEngine:
    """The per-run state machine (split out of Core to keep state explicit)."""

    def __init__(
        self,
        core: Core,
        program: Program,
        regs: Dict[str, int],
        entry: Optional[int],
        user: bool,
        max_instructions: int,
        plan=None,
    ) -> None:
        self.core = core
        self.model = core.model
        self.mmu = core.mmu
        self.pmu = core.pmu
        self.bpu = core.bpu
        self.frontend = core.frontend
        self.program = program
        self.user = user
        self.max_instructions = max_instructions
        self.plan = plan

        self.start_cycle = core.global_cycle
        self.frontend.reset_clock(self.start_cycle)
        self.pc = entry if entry is not None else program.base

        self.spec = RegisterFile()
        for name, value in regs.items():
            self.spec.write(name, value)

        self.reg_ready: Dict[str, int] = {}
        self.flag_ready = self.start_cycle
        self.serialize_until = self.start_cycle
        self.max_ready = self.start_cycle
        self.recovery_busy_until = self.start_cycle

        self.records: List[UopRecord] = []
        self.contexts: List[_SpecContext] = []
        self.tsx_stack: List[_TsxContext] = []
        self.undo_log: List[Tuple[int, bytes]] = []
        self.store_ready: Dict[int, int] = {}
        #: Undo journal for reg_ready / store_ready / tsx_stack mutations
        #: made while speculation is live.  Entry kinds: 0 = reg_ready,
        #: 1 = store_ready (old value or _ABSENT), 2 = tsx push (undo =
        #: pop), 3 = tsx pop (undo = re-append the stored context).
        self.side_journal: List[tuple] = []
        #: Whether the undo journals are recording.  Off on the straight
        #: path (zero overhead); switched on at the first snapshot or
        #: ``xbegin`` and back off once no speculation or transaction
        #: remains open.
        self.journal_live = False
        self.events = RunEvents()
        self.faults: List[Fault] = []

        self.retire_cursor = self.start_cycle
        self.retire_slots = 0
        self.retired_instructions = 0
        self.dispatched_uops = 0
        self.squashed_uops = 0
        self.freed_retired_uops = 0
        self.retire_ptr = 0  # occupancy scan cursor into self.records

        # Each port books the discrete cycles it issues in: an older uop
        # stalled on operands must not block a younger, ready one (the
        # scheduler is out of order).
        self.ports: Dict[UopClass, List[set]] = {
            UopClass.ALU: [set() for _ in range(self.model.alu_ports)],
            UopClass.LOAD: [set() for _ in range(self.model.load_ports)],
            UopClass.STORE: [set() for _ in range(self.model.store_ports)],
            UopClass.BRANCH: [set() for _ in range(self.model.branch_ports)],
            UopClass.SYSTEM: [set()],
        }

        self.halted = False
        self.end_cycle = self.start_cycle
        self.force_resolve = False
        self.dispatch_cycles: Set[int] = set()
        self.iside_walk_base = self.mmu.iside_walk_cycles

    # -- small helpers ---------------------------------------------------------

    def _reg_time(self, name: Optional[str]) -> int:
        if name is None:
            return self.start_cycle
        return self.reg_ready.get(name, self.start_cycle)

    def _journal_on(self) -> None:
        """Arm the copy-on-write journals (idempotent)."""
        if not self.journal_live:
            self.journal_live = True
            self.spec.begin_journal()

    def _snapshot(self) -> _Snapshot:
        self._journal_on()
        return _Snapshot(
            reg_mark=self.spec.journal_mark(),
            side_mark=len(self.side_journal),
            flag_ready=self.flag_ready,
            serialize_until=self.serialize_until,
            max_ready=self.max_ready,
            undo_index=len(self.undo_log),
        )

    def _restore(self, snapshot: _Snapshot) -> None:
        self.spec.journal_rollback(snapshot.reg_mark)
        self._side_rollback(snapshot.side_mark)
        self.flag_ready = snapshot.flag_ready
        self.serialize_until = snapshot.serialize_until
        self.max_ready = snapshot.max_ready
        self._unwind_stores(snapshot.undo_index)

    def _side_rollback(self, mark: int) -> None:
        """Undo reg_ready / store_ready / tsx_stack mutations back to *mark*."""
        journal = self.side_journal
        reg_ready = self.reg_ready
        store_ready = self.store_ready
        tsx_stack = self.tsx_stack
        while len(journal) > mark:
            kind, key, old = journal.pop()
            if kind == 0:
                if old is _ABSENT:
                    reg_ready.pop(key, None)
                else:
                    reg_ready[key] = old
            elif kind == 1:
                if old is _ABSENT:
                    store_ready.pop(key, None)
                else:
                    store_ready[key] = old
            elif kind == 2:  # undo a transient xbegin
                tsx_stack.pop()
            else:  # kind 3: undo a transient xend
                tsx_stack.append(old)

    def _unwind_stores(self, undo_index: int) -> None:
        while len(self.undo_log) > undo_index:
            va, old = self.undo_log.pop()
            self.mmu.poke_raw_bytes(va, old)

    def _squash_after(self, trigger_seq: int) -> int:
        """Mark every record younger than *trigger_seq* squashed; return
        the number of uops freed."""
        squashed = 0
        for record in reversed(self.records):
            if record.seq <= trigger_seq:
                break
            if not record.squashed:
                record.squashed = True
                squashed += record.uop_count
        self.squashed_uops += squashed
        return squashed

    def _live_transient_uops(self, trigger_seq: int) -> int:
        total = 0
        for record in reversed(self.records):
            if record.seq <= trigger_seq:
                break
            if not record.squashed:
                total += record.uop_count
        return total

    def _port_start(self, uop_class: UopClass, earliest: int) -> int:
        """Claim the earliest free issue slot of *uop_class* at or after
        *earliest* (ports are pipelined: one issue slot per cycle)."""
        pool = self.ports.get(uop_class)
        if pool is None:  # NOP / FENCE need no execution port
            return earliest
        best_port = None
        best_cycle = None
        for port in pool:
            cycle = earliest
            while cycle in port:
                cycle += 1
            if best_cycle is None or cycle < best_cycle:
                best_port, best_cycle = port, cycle
                if cycle == earliest:
                    break
        best_port.add(best_cycle)
        return best_cycle

    def _occupancy_earliest(self, upcoming_cycle: int, uop_count: int) -> Optional[int]:
        """ROB-capacity stall: earliest cycle allocation may proceed, or
        ``None`` when the ROB is stuffed with speculative uops that only a
        squash can free (caller must resolve a context)."""
        records = self.records
        retire_ptr = self.retire_ptr
        count = len(records)
        freed = self.freed_retired_uops
        while retire_ptr < count:
            record = records[retire_ptr]
            if record.squashed:
                retire_ptr += 1
                continue
            retire_cycle = record.retire_cycle
            if retire_cycle is not None and retire_cycle <= upcoming_cycle:
                freed += record.uop_count
                retire_ptr += 1
                continue
            break
        self.retire_ptr = retire_ptr
        self.freed_retired_uops = freed
        live = self.dispatched_uops - freed - self.squashed_uops
        if live + uop_count <= self.model.rob_size:
            return upcoming_cycle
        for record in self.records[self.retire_ptr :]:
            if record.squashed:
                continue
            if record.retire_cycle is None:
                return None
            return record.retire_cycle + 1
        return upcoming_cycle

    # -- context resolution ------------------------------------------------------

    def _earliest_context(self) -> Optional[_SpecContext]:
        if not self.contexts:
            return None
        return min(self.contexts, key=lambda ctx: ctx.resolve_cycle)

    def _resolve(self, ctx: _SpecContext) -> None:
        if ctx.kind == "branch":
            self._resolve_branch(ctx)
        else:
            self._resolve_fault(ctx)

    def _resolve_branch(self, ctx: _SpecContext) -> None:
        wrong_uops = self._live_transient_uops(ctx.trigger_seq)
        # The branch's snapshot was taken after its own writes (a
        # mispredicted ret keeps its rsp update), so the rollback target
        # is the state at the start of the *next* record.
        self.events.resolutions.append(
            ResolutionEvent(
                kind="branch",
                trigger_seq=ctx.trigger_seq,
                boundary=len(self.records),
                target_seq=ctx.trigger_seq + 1,
            )
        )
        self._squash_after(ctx.trigger_seq)
        self._restore(ctx.snapshot)
        redirect_cycle = ctx.resolve_cycle + self.model.mispredict_resteer
        recovery_end = redirect_cycle + self.model.recovery_tail + int(
            self.model.branch_drain_per_uop * wrong_uops
        )
        nested = any(c is not ctx for c in self.contexts)
        self.frontend.block_until(redirect_cycle, resteer=True)
        self.pmu.add("INT_MISC.CLEAR_RESTEER_CYCLES", self.model.mispredict_resteer)
        self.recovery_busy_until = max(self.recovery_busy_until, recovery_end)
        self.pmu.add("INT_MISC.RECOVERY_CYCLES", recovery_end - redirect_cycle)
        self.pmu.add("INT_MISC.RECOVERY_CYCLES_ANY", recovery_end - redirect_cycle)
        self.pmu.add("RESOURCE_STALLS.ANY", recovery_end - redirect_cycle)
        self.pmu.add(
            "de_dis_dispatch_token_stalls2.retire_token_stall",
            recovery_end - redirect_cycle,
        )
        self.core.disruptions.append((ctx.resolve_cycle, recovery_end))
        self.events.redirects.append(
            RedirectEvent(
                branch_seq=ctx.trigger_seq,
                branch_pc=self.records[ctx.trigger_seq].pc,
                resolve_cycle=ctx.resolve_cycle,
                redirect_cycle=redirect_cycle,
                recovery_end=recovery_end,
                wrong_path_uops=wrong_uops,
                nested_in_transient=nested,
                kind=ctx.branch_kind,
            )
        )
        self.contexts = [c for c in self.contexts if c.trigger_seq < ctx.trigger_seq]
        for enclosing in self.contexts:
            if enclosing.kind == "fault":
                enclosing.nested_clears += 1
        if nested:
            # The undocumented Skylake event BR_MISP_EXEC.INDIRECT counts
            # up exactly when a clear happens *inside* a transient window
            # (Table 3's 0 -> 1 rows); we model the observed behaviour.
            self.pmu.add("BR_MISP_EXEC.INDIRECT")
        self.pc = ctx.resume_pc
        self.force_resolve = False

    def _resolve_fault(self, ctx: _SpecContext) -> None:
        fault = ctx.fault
        assert fault is not None
        transient_uops = self._live_transient_uops(ctx.trigger_seq)
        flush_start = max(ctx.resolve_cycle, self.recovery_busy_until)
        drain = self.model.fault_flush_base + int(
            self.model.flush_drain_per_uop * transient_uops
        )
        drain += self.model.nested_clear_flush_penalty * ctx.nested_clears
        flush_end = flush_start + drain

        # A TSX abort rolls registers to the xbegin mark and unwinds the
        # transaction's stores; a signal-suppressed fault restores the
        # snapshot taken before the faulting record's forwarded write.
        self.events.resolutions.append(
            ResolutionEvent(
                kind=ctx.suppression,
                trigger_seq=ctx.trigger_seq,
                boundary=len(self.records),
                target_seq=(
                    ctx.tsx.xbegin_seq if ctx.suppression == "tsx" else ctx.trigger_seq
                ),
            )
        )
        self._squash_after(ctx.trigger_seq)
        if ctx.suppression == "tsx":
            assert ctx.tsx is not None
            resume_cycle = flush_end + self.model.tsx_abort_latency
            self._unwind_stores(ctx.tsx.undo_index)
            # Undo transient tsx push/pops back to the fault point, then
            # abort: registers roll to the xbegin mark, and the aborted
            # transaction and everything above it are gone.
            self._side_rollback(ctx.snapshot.side_mark)
            self.spec.journal_rollback(ctx.tsx.reg_mark)
            del self.tsx_stack[ctx.tsx_index :]
            resume_pc = ctx.tsx.fallback_pc
        else:
            resume_cycle = flush_end + self.model.signal_dispatch_latency
            self._restore(ctx.snapshot)
            resume_pc = ctx.resume_pc

        self.reg_ready.clear()
        self.store_ready.clear()
        self.flag_ready = resume_cycle
        self.serialize_until = resume_cycle
        self.max_ready = resume_cycle
        self.retire_cursor = max(self.retire_cursor, resume_cycle)
        self.retire_slots = 0
        self.recovery_busy_until = flush_end
        self.frontend.block_until(resume_cycle, resteer=True)
        # The post-flush refetch is one resteer's worth of frontend stall.
        self.pmu.add("INT_MISC.CLEAR_RESTEER_CYCLES", self.model.mispredict_resteer)
        self.pmu.add("MACHINE_CLEARS.COUNT")
        self.pmu.add("INT_MISC.RECOVERY_CYCLES", drain)
        self.pmu.add("INT_MISC.RECOVERY_CYCLES_ANY", drain)
        self.pmu.add("RESOURCE_STALLS.ANY", max(0, flush_end - ctx.resolve_cycle))
        self.pmu.add(
            "de_dis_dispatch_token_stalls2.retire_token_stall",
            max(0, flush_end - ctx.resolve_cycle),
        )
        self.core.disruptions.append((flush_start, resume_cycle))
        self.events.flushes.append(
            FlushEvent(
                fault_seq=ctx.trigger_seq,
                fault_pc=self.records[ctx.trigger_seq].pc,
                fault_kind=fault.kind.value,
                fault_cycle=ctx.resolve_cycle,
                flush_start=flush_start,
                flush_end=flush_end,
                drained_uops=transient_uops,
                nested_clears=ctx.nested_clears,
                suppression=ctx.suppression,
                resume_pc=resume_pc,
            )
        )
        self.contexts = []
        self.pc = resume_pc
        self.force_resolve = False

    # -- the main loop -------------------------------------------------------------

    def execute(self) -> RunResult:
        instruction_budget = self.max_instructions
        plan_map = self.plan.by_pc if self.plan is not None else None
        # Loop-invariant aliases: the main loop runs once per dispatched
        # instruction, so every attribute fetch it avoids is paid back
        # thousands of times per trial.
        frontend = self.frontend
        counts = self.pmu.counts
        records = self.records
        records_append = records.append
        dispatch_cycles_add = self.dispatch_cycles.add
        deliver = frontend.deliver
        user = self.user
        tsx_stack = self.tsx_stack
        _resolve_cycle_of = _CTX_RESOLVE_CYCLE
        while not self.halted:
            instruction_budget -= 1
            if instruction_budget < 0:
                raise SimulationError(
                    f"instruction budget exhausted at pc={self.pc:#x} "
                    f"(possible runaway program)"
                )
            contexts = self.contexts
            if self.journal_live and not contexts and not tsx_stack:
                # Speculation fully resolved: stop journaling and drop the
                # recorded undo entries (no live mark references them).
                self.journal_live = False
                self.spec.end_journal()
                self.side_journal.clear()
            if contexts:
                ctx = (
                    contexts[0]
                    if len(contexts) == 1
                    else min(contexts, key=_resolve_cycle_of)
                )
            else:
                ctx = None
            # Allocation cannot proceed while the recovery state machine is
            # busy (INT_MISC.RECOVERY_CYCLES is exactly this stall) -- the
            # mechanism that makes a wrong-path drain visible in the ToTE.
            # (delivery_floor, unrolled: max of frontend clock and block.)
            fetch_floor = frontend._clock
            if frontend._block_until > fetch_floor:
                fetch_floor = frontend._block_until
            if self.serialize_until > fetch_floor:
                fetch_floor = self.serialize_until
            if self.recovery_busy_until > fetch_floor:
                fetch_floor = self.recovery_busy_until
            pc = self.pc
            if plan_map is not None:
                entry = plan_map.get(pc)
                off_program = entry is None
            else:
                entry = None
                off_program = not self.program.contains_address(pc)
            if ctx is not None and (
                self.force_resolve or off_program or fetch_floor >= ctx.resolve_cycle
            ):
                self._resolve(ctx)
                continue
            if off_program:
                raise SimulationError(f"fetch left the program at {pc:#x}")

            if entry is not None:
                instruction = entry.instruction
                uop_count = entry.uop_count
                info = entry.info
                line = entry.line
                handler = entry.handler
                fall_through = entry.fall_through
            else:
                instruction = self.program.fetch(pc)
                info = instruction.info
                uop_count = info.uop_count
                line = -1
                handler = _OP_HANDLERS.get(instruction.op)
                fall_through = pc + INSTRUCTION_SIZE

            earliest = fetch_floor
            occupancy_earliest = self._occupancy_earliest(earliest, uop_count)
            if occupancy_earliest is None:
                if ctx is not None:
                    self._resolve(ctx)
                    continue
                raise SimulationError("ROB deadlock outside speculation")
            if occupancy_earliest > earliest:
                stall = occupancy_earliest - earliest
                counts["RESOURCE_STALLS.ANY"] += stall
                counts["de_dis_dispatch_token_stalls2.retire_token_stall"] += stall
                earliest = occupancy_earliest
            if ctx is not None and earliest >= ctx.resolve_cycle:
                self._resolve(ctx)
                continue

            transient = bool(contexts)
            delivery = deliver(
                pc,
                instruction,
                earliest,
                user=user,
                transient=transient,
                info=info,
                line=line,
            )
            dispatch_cycle = delivery.cycle
            if ctx is not None and dispatch_cycle >= ctx.resolve_cycle:
                # The flush kills the frontend before this delivery lands.
                self._resolve(ctx)
                continue

            record = UopRecord(
                seq=len(records),
                pc=pc,
                instruction=instruction,
                dispatch_cycle=dispatch_cycle,
                source=delivery.source,
                transient=transient,
                uop_count=uop_count,
            )
            records_append(record)
            self.dispatched_uops += uop_count
            counts["UOPS_ISSUED.ANY"] += uop_count
            dispatch_cycles_add(dispatch_cycle)

            if handler is None:
                raise SimulationError(f"no handler for {instruction.op}")
            self.pc = fall_through  # fall-through default;
            #                         branch handlers override
            handler(self, record, instruction, dispatch_cycle)
            if record.ready_cycle > self.max_ready:
                self.max_ready = record.ready_cycle
            if (
                not record.transient
                and record.fault is None
                and record.retire_cycle is None
                and not self.halted
            ):
                self._commit_retire(record)

        self._pmu_epilogue(self.end_cycle)
        return RunResult(
            start_cycle=self.start_cycle,
            end_cycle=self.end_cycle,
            instructions_retired=self.retired_instructions,
            uops_issued=self.dispatched_uops,
            regs=self.spec.copy(),
            halted=self.halted,
            events=self.events,
            faults=self.faults,
        )

    def _commit_retire(self, record: UopRecord) -> None:
        retire = max(record.ready_cycle + 1, self.retire_cursor)
        if retire == self.retire_cursor:
            if self.retire_slots + record.uop_count > self.model.retire_width:
                retire += 1
                self.retire_slots = record.uop_count
            else:
                self.retire_slots += record.uop_count
        else:
            self.retire_slots = record.uop_count
        self.retire_cursor = retire
        record.retire_cycle = retire
        self.retired_instructions += 1
        self.pmu.counts["UOPS_RETIRED.RETIRE_SLOTS"] += record.uop_count

    # -- per-instruction semantics ---------------------------------------------

    def _write_dest(self, record: UopRecord, name: str, value: int) -> None:
        record.dest_value = value
        self.spec.write(name, value)
        self._set_reg_ready(name, record.ready_cycle)

    def _set_reg_ready(self, name: str, cycle: int) -> None:
        if self.journal_live:
            self.side_journal.append((0, name, self.reg_ready.get(name, _ABSENT)))
        self.reg_ready[name] = cycle

    def _set_store_ready(self, va: int, cycle: int) -> None:
        if self.journal_live:
            self.side_journal.append((1, va, self.store_ready.get(va, _ABSENT)))
        self.store_ready[va] = cycle

    def _op_mov_ri(self, record, instruction, dispatch):
        start = self._port_start(UopClass.ALU, dispatch)
        record.start_cycle = start
        record.ready_cycle = start + 1
        value = instruction.imm if instruction.imm is not None else instruction.target_addr
        self._write_dest(record, instruction.dst, value & MASK64)

    def _op_mov_rr(self, record, instruction, dispatch):
        src_ready = self.reg_ready.get(instruction.src, self.start_cycle)
        start = self._port_start(
            UopClass.ALU, src_ready if src_ready > dispatch else dispatch
        )
        record.start_cycle = start
        record.ready_cycle = start + 1
        self._write_dest(record, instruction.dst, self.spec.read(instruction.src))

    def _op_lea(self, record, instruction, dispatch):
        mem = instruction.mem
        reg_ready = self.reg_ready
        start_cycle = self.start_cycle
        deps = max(
            dispatch,
            reg_ready.get(mem.base, start_cycle),
            reg_ready.get(mem.index, start_cycle),
        )
        start = self._port_start(UopClass.ALU, deps)
        record.start_cycle = start
        record.ready_cycle = start + 1
        self._write_dest(record, instruction.dst, mem.effective_address(self.spec.read))

    def _op_alu(self, record, instruction, dispatch):
        op = instruction.op
        left = self.spec.read(instruction.dst)
        right = (
            self.spec.read(instruction.src)
            if instruction.src is not None
            else (instruction.imm & MASK64)
        )
        reg_ready = self.reg_ready
        start_cycle = self.start_cycle
        deps = max(
            dispatch,
            reg_ready.get(instruction.dst, start_cycle),
            reg_ready.get(instruction.src, start_cycle) if instruction.src else dispatch,
        )
        start = self._port_start(UopClass.ALU, deps)
        record.start_cycle = start
        record.ready_cycle = start + 1

        carry = False
        if op is Op.ADD:
            result = left + right
            carry = result > MASK64
        elif op in (Op.SUB, Op.CMP):
            result = left - right
            carry = left < right
        elif op in (Op.AND, Op.TEST):
            result = left & right
        elif op is Op.OR:
            result = left | right
        elif op is Op.XOR:
            result = left ^ right
        elif op is Op.SHL:
            result = left << (right & 63)
        elif op is Op.SHR:
            result = left >> (right & 63)
        else:  # pragma: no cover - decoder guarantees coverage
            raise SimulationError(f"ALU op {op} unhandled")
        result &= MASK64
        self.spec.set_alu_flags(result, carry=carry)
        self.flag_ready = record.ready_cycle
        if op not in (Op.CMP, Op.TEST):
            self._write_dest(record, instruction.dst, result)

    def _op_nop(self, record, instruction, dispatch):
        record.start_cycle = dispatch
        record.ready_cycle = dispatch

    def _op_fence(self, record, instruction, dispatch):
        start = max(dispatch, self.max_ready)
        record.start_cycle = start
        record.ready_cycle = start + instruction.info.base_latency
        if self.contexts:
            # A fence inside an unresolved speculation can never complete:
            # it orders against *retirement* of older operations, and the
            # faulting/mispredicted op ahead of it will never retire.
            # Issue stays plugged until the window resolves -- the paper's
            # Figure 4 mechanism ("the not-trigger path will encounter a
            # fence, which hinders the issuance of subsequent uops").
            self.serialize_until = max(
                self.serialize_until,
                max(ctx.resolve_cycle for ctx in self.contexts) + 1,
            )
        else:
            self.serialize_until = record.ready_cycle

    def _op_rdtsc(self, record, instruction, dispatch):
        start = self._port_start(UopClass.SYSTEM, max(dispatch, self.max_ready))
        record.start_cycle = start
        record.ready_cycle = start + instruction.info.base_latency
        self.serialize_until = record.ready_cycle
        self._write_dest(record, "rax", start)
        self.spec.write("rdx", 0)
        self._set_reg_ready("rdx", record.ready_cycle)

    def _op_syscall(self, record, instruction, dispatch):
        start = max(dispatch, self.max_ready, self.serialize_until)
        record.start_cycle = start
        record.ready_cycle = start + instruction.info.base_latency
        self.serialize_until = record.ready_cycle
        if self.core.syscall_handler is not None:
            self.core.syscall_handler(self.spec)
            for name in ("rax", "rbx", "rcx", "rdx", "rsi", "rdi"):
                self._set_reg_ready(name, record.ready_cycle)

    def _op_hlt(self, record, instruction, dispatch):
        record.start_cycle = dispatch
        record.ready_cycle = dispatch + 1
        if self.contexts:
            # A transient hlt cannot stop the machine; dispatch just has
            # nothing more to do until the window resolves.
            self.force_resolve = True
            return
        self._commit_retire(record)
        self.halted = True
        self.end_cycle = record.retire_cycle

    def _op_prefetch(self, record, instruction, dispatch):
        mem = instruction.mem
        reg_ready = self.reg_ready
        start_cycle = self.start_cycle
        deps = max(
            dispatch,
            reg_ready.get(mem.base, start_cycle),
            reg_ready.get(mem.index, start_cycle),
        )
        start = self._port_start(UopClass.LOAD, deps)
        va = mem.effective_address(self.spec.read)
        latency = self.mmu.prefetch(
            va, user=self.user, now=start, thread_id=self.core.thread_id
        )
        record.start_cycle = start
        record.ready_cycle = start + max(1, latency)
        record.memory_va = va
        record.memory_latency = latency

    def _op_clflush(self, record, instruction, dispatch):
        mem = instruction.mem
        reg_ready = self.reg_ready
        start_cycle = self.start_cycle
        deps = max(
            dispatch,
            reg_ready.get(mem.base, start_cycle),
            reg_ready.get(mem.index, start_cycle),
        )
        start = self._port_start(UopClass.STORE, deps)
        va = mem.effective_address(self.spec.read)
        self.mmu.clflush(va, user=self.user)
        record.start_cycle = start
        record.ready_cycle = start + instruction.info.base_latency
        record.memory_va = va

    def _op_load(self, record, instruction, dispatch):
        mem = instruction.mem
        reg_ready = self.reg_ready
        start_cycle = self.start_cycle
        deps = max(
            dispatch,
            reg_ready.get(mem.base, start_cycle),
            reg_ready.get(mem.index, start_cycle),
        )
        start = self._port_start(UopClass.LOAD, deps)
        va = mem.effective_address(self.spec.read)
        start = max(start, self.store_ready.get(va, self.start_cycle))
        access = self.mmu.data_access(
            va,
            write=False,
            size=1 if instruction.op is Op.LOAD_BYTE else 8,
            user=self.user,
            now=start,
            thread_id=self.core.thread_id,
        )
        record.start_cycle = start
        record.ready_cycle = start + max(1, access.latency)
        record.memory_va = va
        record.memory_latency = access.latency
        record.cache_hit_level = access.hit_level
        if not access.tlb_hit:
            self.pmu.add("DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK")
        if access.walk is not None:
            self.pmu.add("DTLB_LOAD_MISSES.WALK_ACTIVE", access.walk.latency)
        if access.fault is not None:
            self._handle_fault(record, access.fault, access)
            return
        if access.hit_level != "L1":
            self.pmu.add("MEM_LOAD_RETIRED.L1_MISS")
        if access.hit_level == "DRAM":
            self.pmu.add("LONGEST_LAT_CACHE.MISS")
        self._write_dest(record, instruction.dst, access.value)

    def _op_store(self, record, instruction, dispatch):
        mem = instruction.mem
        value = (
            self.spec.read(instruction.src)
            if instruction.src is not None
            else (instruction.imm & MASK64)
        )
        deps = max(
            dispatch,
            self._reg_time(mem.base),
            self._reg_time(mem.index),
            self._reg_time(instruction.src) if instruction.src else dispatch,
        )
        start = self._port_start(UopClass.STORE, deps)
        va = mem.effective_address(self.spec.read)
        old = self.mmu.peek_raw_bytes(va, 8)
        access = self.mmu.data_access(
            va,
            write=True,
            value=value,
            size=8,
            user=self.user,
            now=start,
            thread_id=self.core.thread_id,
        )
        record.start_cycle = start
        record.ready_cycle = start + max(1, access.latency)
        record.memory_va = va
        record.memory_latency = access.latency
        if access.fault is not None:
            self._handle_fault(record, access.fault, access)
            return
        assert old is not None
        self.undo_log.append((va, old))
        self._set_store_ready(va, record.ready_cycle)

    def _op_jmp(self, record, instruction, dispatch):
        start = self._port_start(UopClass.BRANCH, dispatch)
        record.start_cycle = start
        record.ready_cycle = start + 1
        record.is_branch = True
        record.actual_target = instruction.target_addr
        self.bpu.btb.update(record.pc, instruction.target_addr)
        self.pmu.add("bp_l1_btb_correct")
        self.pc = instruction.target_addr

    def _op_jcc(self, record, instruction, dispatch):
        taken_target = instruction.target_addr
        fallthrough = record.pc + INSTRUCTION_SIZE
        predicted_taken, _ = self.bpu.predict_conditional(record.pc, taken_target)
        start = self._port_start(UopClass.BRANCH, max(dispatch, self.flag_ready))
        record.start_cycle = start
        record.ready_cycle = start + 1
        record.is_branch = True
        actual_taken = instruction.cond.evaluate(
            self.spec.read_flag("zf"),
            self.spec.read_flag("cf"),
            self.spec.read_flag("sf"),
            self.spec.read_flag("of"),
        )
        record.predicted_taken = predicted_taken
        record.actual_taken = actual_taken
        record.predicted_target = taken_target if predicted_taken else fallthrough
        record.actual_target = taken_target if actual_taken else fallthrough
        record.mispredicted = self.bpu.resolve_conditional(
            record.pc, predicted_taken, actual_taken
        )
        if actual_taken:
            self.bpu.btb.update(record.pc, taken_target)
        if record.mispredicted:
            self.pmu.add("BR_MISP_EXEC.ALL_BRANCHES")
            self.contexts.append(
                _SpecContext(
                    kind="branch",
                    trigger_seq=record.seq,
                    resolve_cycle=record.ready_cycle,
                    resume_pc=record.actual_target,
                    snapshot=self._snapshot(),
                    branch_kind="conditional",
                )
            )
            self.pc = record.predicted_target
        else:
            self.pc = record.actual_target

    def _op_call(self, record, instruction, dispatch):
        return_address = record.pc + INSTRUCTION_SIZE
        rsp = (self.spec.read("rsp") - 8) & MASK64
        deps = max(dispatch, self._reg_time("rsp"))
        start = self._port_start(UopClass.BRANCH, deps)
        old = self.mmu.peek_raw_bytes(rsp, 8)
        access = self.mmu.data_access(
            rsp,
            write=True,
            value=return_address,
            size=8,
            user=self.user,
            now=start,
            thread_id=self.core.thread_id,
        )
        record.start_cycle = start
        record.ready_cycle = start + max(1, access.latency)
        record.is_branch = True
        record.actual_target = instruction.target_addr
        record.memory_va = rsp
        if access.fault is not None:
            self._handle_fault(record, access.fault, access)
            return
        assert old is not None
        self.undo_log.append((rsp, old))
        self._set_store_ready(rsp, record.ready_cycle)
        self.spec.write("rsp", rsp)
        self._set_reg_ready("rsp", record.ready_cycle)
        self.bpu.on_call(return_address, instruction.target_addr, record.pc)
        self.pc = instruction.target_addr

    def _op_ret(self, record, instruction, dispatch):
        rsp = self.spec.read("rsp")
        deps = max(dispatch, self._reg_time("rsp"))
        start = self._port_start(UopClass.LOAD, deps)
        start = max(start, self.store_ready.get(rsp, self.start_cycle))
        access = self.mmu.data_access(
            rsp, write=False, user=self.user, now=start, thread_id=self.core.thread_id
        )
        record.start_cycle = start
        record.ready_cycle = start + max(1, access.latency)
        record.is_branch = True
        record.memory_va = rsp
        record.memory_latency = access.latency
        if access.fault is not None:
            self._handle_fault(record, access.fault, access)
            return
        actual_target = access.value
        predicted = self.bpu.predict_return()
        record.actual_target = actual_target
        record.predicted_target = predicted
        self.spec.write("rsp", (rsp + 8) & MASK64)
        self._set_reg_ready("rsp", record.ready_cycle)
        if predicted == actual_target:
            self.pmu.add("bp_l1_btb_correct")
            self.pc = actual_target
            return
        record.mispredicted = True
        self.pmu.add("BR_MISP_EXEC.ALL_BRANCHES")
        self.pmu.add("BR_MISP_EXEC.INDIRECT")
        self.contexts.append(
            _SpecContext(
                kind="branch",
                trigger_seq=record.seq,
                resolve_cycle=record.ready_cycle,
                resume_pc=actual_target,
                snapshot=self._snapshot(),
                branch_kind="return" if predicted is not None else "underflow",
            )
        )
        if predicted is not None:
            self.pc = predicted  # transient fetch down the stale RSB path
        else:
            # Underflow: nothing to fetch down; stall until the redirect.
            self.pc = record.pc
            self.force_resolve = True

    def _op_xbegin(self, record, instruction, dispatch):
        start = max(dispatch, self.serialize_until)
        record.start_cycle = start
        record.ready_cycle = start + instruction.info.base_latency
        if not self.model.has_tsx:
            raise SimulationError(
                f"{self.model.name} has no TSX; use signal-handler suppression"
            )
        # An open transaction must be abortable, so journaling starts here
        # (an abort rolls registers back to this mark).
        self._journal_on()
        self.side_journal.append((2, None, None))
        self.tsx_stack.append(
            _TsxContext(
                xbegin_seq=record.seq,
                fallback_pc=instruction.target_addr,
                reg_mark=self.spec.journal_mark(),
                undo_index=len(self.undo_log),
            )
        )

    def _op_xend(self, record, instruction, dispatch):
        start = max(dispatch, self.serialize_until)
        record.start_cycle = start
        record.ready_cycle = start + instruction.info.base_latency
        if not self.tsx_stack:
            raise SimulationError("xend outside a transaction")
        popped = self.tsx_stack.pop()
        if self.journal_live:
            self.side_journal.append((3, None, popped))

    # -- fault plumbing -----------------------------------------------------------

    def _handle_fault(self, record: UopRecord, fault: Fault, access) -> None:
        record.fault = fault
        self.faults.append(fault)
        snapshot_pre_fault = self._snapshot()
        forwarded = self._transient_forward(fault, access)
        record.transient_value = forwarded
        if (
            record.instruction.op in (Op.LOAD, Op.LOAD_BYTE)
            and record.instruction.dst is not None
        ):
            self._write_dest(record, record.instruction.dst, forwarded)
        if self.contexts:
            # Fault inside an unresolved speculation: it can never retire,
            # so it never raises; the enclosing squash disposes of it.
            return
        if self.tsx_stack:
            suppression = "tsx"
            resume_pc = self.tsx_stack[-1].fallback_pc
            tsx = self.tsx_stack[-1]
            tsx_index = len(self.tsx_stack) - 1
        elif self.core.signal_handler_pc is not None:
            suppression = "signal"
            resume_pc = self.core.signal_handler_pc
            tsx = None
            tsx_index = -1
        else:
            raise SimulationError(
                f"unhandled fault {fault.kind.value} at {fault.va:#x} "
                f"(no transaction, no signal handler)"
            )
        fault_cycle = (
            max(record.ready_cycle + 1, self.retire_cursor) + self.model.fault_raise_delay
        )
        self.contexts.append(
            _SpecContext(
                kind="fault",
                trigger_seq=record.seq,
                resolve_cycle=fault_cycle,
                resume_pc=resume_pc,
                snapshot=snapshot_pre_fault,
                suppression=suppression,
                fault=fault,
                tsx=tsx,
                tsx_index=tsx_index,
            )
        )

    def _transient_forward(self, fault: Fault, access) -> int:
        """What a vulnerable pipeline forwards to dependents of a faulting
        access: the real data (Meltdown), a stale LFB byte (MDS), or zero
        on fixed silicon."""
        if (
            self.model.meltdown_vulnerable
            and fault.kind in (FaultKind.PROTECTION, FaultKind.WRITE_PROTECT)
            and access.paddr is not None
            and access.was_cached
        ):
            value = self.mmu.peek_physical(fault.va)
            return value if value is not None else 0
        if self.model.mds_vulnerable:
            stale = self.mmu.lfb.sample_stale(fault.va & 63)
            if stale is not None:
                return stale
        return 0

    # -- PMU epilogue ----------------------------------------------------------------

    def _pmu_epilogue(self, end_cycle: int) -> None:
        lo = self.start_cycle
        hi = end_cycle
        span = max(1, hi - lo)
        # Clip to [lo, hi] while scanning (one pass instead of build-then-
        # clip inside _union_length).
        exec_intervals = []
        mem_intervals = []
        inflight_intervals = []
        for record in self.records:
            start = record.start_cycle
            ready = record.ready_cycle
            dispatch = record.dispatch_cycle
            if ready > start and ready > lo and start < hi:
                exec_intervals.append(
                    (start if start > lo else lo, ready if ready < hi else hi)
                )
            infl_end = ready if ready > dispatch + 1 else dispatch + 1
            if infl_end > lo and dispatch < hi:
                inflight_intervals.append(
                    (
                        dispatch if dispatch > lo else lo,
                        infl_end if infl_end < hi else hi,
                    )
                )
            if (
                record.memory_va is not None
                and record.instruction.info.is_load
                and ready > lo
                and start < hi
            ):
                mem_intervals.append(
                    (start if start > lo else lo, ready if ready < hi else hi)
                )
        covered_exec = _merged_length(exec_intervals)
        covered_mem = _merged_length(mem_intervals)
        covered_inflight = _merged_length(inflight_intervals)
        idle = max(0, span - covered_exec)
        self.pmu.add("UOPS_EXECUTED.CORE_CYCLES_NONE", idle)
        self.pmu.add("UOPS_EXECUTED.STALL_CYCLES", idle)
        self.pmu.add("CYCLE_ACTIVITY.STALLS_TOTAL", idle)
        self.pmu.add("CYCLE_ACTIVITY.CYCLES_MEM_ANY", covered_mem)
        self.pmu.add("RS_EVENTS.EMPTY_CYCLES", max(0, span - covered_inflight))
        issue_idle = max(0, span - len(self.dispatch_cycles))
        self.pmu.add("UOPS_ISSUED.STALL_CYCLES", issue_idle)
        self.pmu.add("de_dis_uop_queue_empty_di0", issue_idle)
        self.pmu.add(
            "ITLB_MISSES.WALK_ACTIVE", self.mmu.iside_walk_cycles - self.iside_walk_base
        )


def _merged_length(intervals: List[Tuple[int, int]]) -> int:
    """Total length of the union of already-clipped *intervals*."""
    if not intervals:
        return 0
    intervals.sort()
    iterator = iter(intervals)
    current_start, current_end = next(iterator)
    total = 0
    for start, end in iterator:
        if start <= current_end:
            if end > current_end:
                current_end = end
        else:
            total += current_end - current_start
            current_start, current_end = start, end
    return total + (current_end - current_start)


def _union_length(intervals: List[Tuple[int, int]], lo: int, hi: int) -> int:
    """Total length of the union of *intervals*, clipped to [lo, hi]."""
    clipped = [
        (start if start > lo else lo, end if end < hi else hi)
        for start, end in intervals
        if end > lo and start < hi
    ]
    return _merged_length(clipped)


_OP_HANDLERS: Dict[Op, Callable] = {
    Op.MOV_RI: _RunEngine._op_mov_ri,
    Op.MOV_RR: _RunEngine._op_mov_rr,
    Op.LEA: _RunEngine._op_lea,
    Op.ADD: _RunEngine._op_alu,
    Op.SUB: _RunEngine._op_alu,
    Op.AND: _RunEngine._op_alu,
    Op.OR: _RunEngine._op_alu,
    Op.XOR: _RunEngine._op_alu,
    Op.SHL: _RunEngine._op_alu,
    Op.SHR: _RunEngine._op_alu,
    Op.CMP: _RunEngine._op_alu,
    Op.TEST: _RunEngine._op_alu,
    Op.NOP: _RunEngine._op_nop,
    Op.PREFETCH: _RunEngine._op_prefetch,
    Op.MFENCE: _RunEngine._op_fence,
    Op.LFENCE: _RunEngine._op_fence,
    Op.SFENCE: _RunEngine._op_fence,
    Op.RDTSC: _RunEngine._op_rdtsc,
    Op.RDTSCP: _RunEngine._op_rdtsc,
    Op.SYSCALL: _RunEngine._op_syscall,
    Op.HLT: _RunEngine._op_hlt,
    Op.CLFLUSH: _RunEngine._op_clflush,
    Op.LOAD: _RunEngine._op_load,
    Op.LOAD_BYTE: _RunEngine._op_load,
    Op.STORE: _RunEngine._op_store,
    Op.JMP: _RunEngine._op_jmp,
    Op.JCC: _RunEngine._op_jcc,
    Op.CALL: _RunEngine._op_call,
    Op.RET: _RunEngine._op_ret,
    Op.XBEGIN: _RunEngine._op_xbegin,
    Op.XEND: _RunEngine._op_xend,
}
