"""In-flight uop records and the pipeline events the tracer collects."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.instructions import Instruction
from repro.memory.mmu import Fault, TranslationEvent

__all__ = [
    "UopRecord",
    "RedirectEvent",
    "FlushEvent",
    "ResolutionEvent",
    "TranslationEvent",  # re-export: emitted by the MMU, consumed here
    "RunEvents",
]


class UopRecord:
    """One dispatched instruction (its uops are accounted as a group).

    Timestamps are simulator cycles: ``dispatch_cycle`` is allocation into
    the backend, ``start_cycle`` is issue to a port, ``ready_cycle`` is
    completion, ``retire_cycle`` is commitment (``None`` for uops that were
    squashed and never retired -- the transient ones).

    A hand-written ``__slots__`` class rather than a dataclass: one record
    is allocated per simulated instruction, so per-instance ``__dict__``
    churn was a measurable slice of campaign profiles.  ``uop_count`` is a
    plain attribute (the decode plan supplies it pre-resolved; the default
    falls back to the opcode table).
    """

    __slots__ = (
        "seq",
        "pc",
        "instruction",
        "dispatch_cycle",
        "source",
        "uop_count",
        "start_cycle",
        "ready_cycle",
        "retire_cycle",
        "transient",
        "squashed",
        "fault",
        "transient_value",
        "is_branch",
        "predicted_taken",
        "predicted_target",
        "actual_taken",
        "actual_target",
        "mispredicted",
        "memory_va",
        "memory_latency",
        "cache_hit_level",
        "dest_value",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        instruction: Instruction,
        dispatch_cycle: int,
        source: str = "dsb",  # frontend delivery path: dsb | mite | ms
        transient: bool = False,  # dispatched under an unresolved speculation
        uop_count: Optional[int] = None,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.instruction = instruction
        self.dispatch_cycle = dispatch_cycle
        self.source = source
        self.uop_count = instruction.uop_count if uop_count is None else uop_count
        self.start_cycle = 0
        self.ready_cycle = 0
        self.retire_cycle: Optional[int] = None
        self.transient = transient
        self.squashed = False
        self.fault: Optional[Fault] = None
        #: the value a vulnerable pipeline forwarded despite the fault
        self.transient_value: Optional[int] = None
        # Branch bookkeeping
        self.is_branch = False
        self.predicted_taken: Optional[bool] = None
        self.predicted_target: Optional[int] = None
        self.actual_taken: Optional[bool] = None
        self.actual_target: Optional[int] = None
        self.mispredicted = False
        # Memory bookkeeping
        self.memory_va: Optional[int] = None
        self.memory_latency = 0
        self.cache_hit_level = ""
        #: The value the destination register received (set by
        #: ``_write_dest``); ``None`` for ops without a journaled dest
        #: write.  The batch executor's shadow replay reads it.
        self.dest_value: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"UopRecord(seq={self.seq}, pc={self.pc:#x}, "
            f"{self.instruction}, dispatch={self.dispatch_cycle})"
        )


@dataclass(frozen=True)
class RedirectEvent:
    """A branch-mispredict redirect (possibly nested in a transient window)."""

    branch_seq: int
    branch_pc: int
    resolve_cycle: int
    redirect_cycle: int
    recovery_end: int
    wrong_path_uops: int
    nested_in_transient: bool
    kind: str  # "conditional" | "return" | "underflow"


@dataclass(frozen=True)
class FlushEvent:
    """A retired-fault pipeline flush (the transient window's end)."""

    fault_seq: int
    fault_pc: int
    fault_kind: str
    fault_cycle: int
    flush_start: int
    flush_end: int
    drained_uops: int
    nested_clears: int
    suppression: str  # "tsx" | "signal"
    resume_pc: int


@dataclass(frozen=True)
class ResolutionEvent:
    """One squash applied to the record stream, in resolution order.

    ``boundary`` is ``len(records)`` at the moment the rollback ran:
    every record with ``seq < boundary`` had already executed, and the
    records from ``boundary`` on saw post-rollback state.  ``target_seq``
    names the architectural state the rollback restored: the mark taken
    at the *start* of that record's shadow processing (a mispredicted
    branch keeps its trigger's own writes, so its target is
    ``trigger_seq + 1``; a signal-suppressed fault drops them,
    ``trigger_seq``; a TSX abort unwinds to its ``xbegin``).  The batch
    executor replays these between records to keep its per-lane shadow
    state aligned with the engine's journals.
    """

    kind: str  # "branch" | "tsx" | "signal"
    trigger_seq: int
    boundary: int
    target_seq: int


@dataclass
class RunEvents:
    """All pipeline events of one run, for Figures 3 and 4."""

    redirects: list = field(default_factory=list)
    flushes: list = field(default_factory=list)
    #: Chronological squash breadcrumbs (:class:`ResolutionEvent`) -- the
    #: rollback schedule the batch executor's shadow replay follows.
    resolutions: list = field(default_factory=list)
    #: Chronological MMU breadcrumbs (:class:`TranslationEvent`) -- the
    #: translation timeline the batch executor's page-table shadow
    #: verifies follower lanes against.  Populated only under
    #: ``record_trace`` (the MMU log is armed by ``Core.run``).
    translations: list = field(default_factory=list)
