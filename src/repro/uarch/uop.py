"""In-flight uop records and the pipeline events the tracer collects."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.isa.instructions import Instruction
from repro.memory.mmu import Fault


@dataclass
class UopRecord:
    """One dispatched instruction (its uops are accounted as a group).

    Timestamps are simulator cycles: ``dispatch_cycle`` is allocation into
    the backend, ``start_cycle`` is issue to a port, ``ready_cycle`` is
    completion, ``retire_cycle`` is commitment (``None`` for uops that were
    squashed and never retired -- the transient ones).
    """

    seq: int
    pc: int
    instruction: Instruction
    dispatch_cycle: int
    source: str = "dsb"  # frontend delivery path: dsb | mite | ms
    start_cycle: int = 0
    ready_cycle: int = 0
    retire_cycle: Optional[int] = None

    transient: bool = False  # dispatched under an unresolved speculation
    squashed: bool = False
    fault: Optional[Fault] = None
    #: the value a vulnerable pipeline forwarded despite the fault
    transient_value: Optional[int] = None

    # Branch bookkeeping
    is_branch: bool = False
    predicted_taken: Optional[bool] = None
    predicted_target: Optional[int] = None
    actual_taken: Optional[bool] = None
    actual_target: Optional[int] = None
    mispredicted: bool = False

    # Memory bookkeeping
    memory_va: Optional[int] = None
    memory_latency: int = 0
    cache_hit_level: str = ""

    @property
    def uop_count(self) -> int:
        return self.instruction.uop_count


@dataclass(frozen=True)
class RedirectEvent:
    """A branch-mispredict redirect (possibly nested in a transient window)."""

    branch_seq: int
    branch_pc: int
    resolve_cycle: int
    redirect_cycle: int
    recovery_end: int
    wrong_path_uops: int
    nested_in_transient: bool
    kind: str  # "conditional" | "return" | "underflow"


@dataclass(frozen=True)
class FlushEvent:
    """A retired-fault pipeline flush (the transient window's end)."""

    fault_seq: int
    fault_pc: int
    fault_kind: str
    fault_cycle: int
    flush_start: int
    flush_end: int
    drained_uops: int
    nested_clears: int
    suppression: str  # "tsx" | "signal"
    resume_pc: int


@dataclass
class RunEvents:
    """All pipeline events of one run, for Figures 3 and 4."""

    redirects: list = field(default_factory=list)
    flushes: list = field(default_factory=list)
