"""Microarchitecture substrate: the out-of-order core the channel lives in.

The Whisper channel is a property of how a pipeline handles *nested* work
inside a transient window: a mispredicted Jcc opens resteer/recovery
machinery that the eventual fault flush must drain (longer ToTE), while a
taken transient jump that skips the remaining uop stream shrinks the
in-flight set the flush must drain (shorter ToTE).  The core in this
package implements those mechanisms -- plus DSB/MITE/MS uop delivery, a
PHT/BTB/RSB branch predictor, TSX, signal-based fault suppression, SMT and
a PMU -- so the channel *emerges* rather than being scripted.

* :mod:`repro.uarch.config` -- per-CPU-model parameters and vulnerability
  flags (Table 2's five machines).
* :mod:`repro.uarch.bpu` -- branch prediction (PHT, BTB, return stack).
* :mod:`repro.uarch.frontend` -- uop delivery (DSB / MITE / MS) timing.
* :mod:`repro.uarch.pmu` -- the performance-monitoring counters of Table 3.
* :mod:`repro.uarch.core` -- the event-driven out-of-order engine.
* :mod:`repro.uarch.smt` -- two hardware threads on one core (§4.4).
"""

from repro.uarch.bpu import BranchPredictor
from repro.uarch.config import CPU_MODELS, CpuModel, cpu_model
from repro.uarch.core import Core, RunResult, SimulationError
from repro.uarch.frontend import Frontend
from repro.uarch.pmu import PmuCounters
from repro.uarch.smt import SmtCore

__all__ = [
    "BranchPredictor",
    "CPU_MODELS",
    "Core",
    "CpuModel",
    "Frontend",
    "PmuCounters",
    "RunResult",
    "SimulationError",
    "SmtCore",
    "cpu_model",
]
