"""The frontend: uop delivery from DSB, MITE or the microcode sequencer.

The paper's Table 3 shows the IDQ picture changing when a transient Jcc
triggers: fewer uops from the DSB, more from MITE, fewer from the MS, and
extra resteer cycles.  Those effects come from this model: a resteer
redirects fetch to a line that has usually fallen out of the DSB, forcing
the slower MITE path, and a blocked frontend delivers fewer microcoded
uops before the flush.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.isa.instructions import Instruction
from repro.memory.mmu import Mmu
from repro.uarch.config import CpuModel
from repro.uarch.pmu import PmuCounters

#: Instruction-fetch line size in bytes (matches ICACHE_16B granularity).
FETCH_LINE = 16


class Delivery:
    """When and whence one instruction's uops were delivered."""

    __slots__ = ("cycle", "source", "uops", "fetch_stall")

    def __init__(self, cycle: int, source: str, uops: int, fetch_stall: int) -> None:
        self.cycle = cycle
        self.source = source  # "dsb" | "mite" | "ms"
        self.uops = uops
        self.fetch_stall = fetch_stall

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Delivery(cycle={self.cycle}, source={self.source!r}, "
            f"uops={self.uops}, fetch_stall={self.fetch_stall})"
        )


class Frontend:
    """Delivers decoded uops to the allocator with cycle accounting."""

    def __init__(self, model: CpuModel, mmu: Mmu, pmu: PmuCounters) -> None:
        self.model = model
        self.mmu = mmu
        self.pmu = pmu
        self._dsb: OrderedDict = OrderedDict()  # line -> True, LRU
        self._clock = 0
        self._slots_used = 0
        self._block_until = 0
        self._last_line = -1
        self._last_source = "dsb"
        # Distinct-cycle sets are too heavy for long runs; we count
        # transitions instead (each new allocation cycle counts once).
        self._counted_cycle = -1
        # Model constants hoisted out of the per-delivery path.
        self._issue_width = model.issue_width
        self._l1i_latency = model.l1i.latency
        self._mite_line_penalty = model.mite_line_penalty
        self._ms_switch_penalty = model.ms_switch_penalty
        self._dsb_lines = model.dsb_lines

    @property
    def delivery_floor(self) -> int:
        """Soonest cycle the next delivery could land (lower bound)."""
        return max(self._clock, self._block_until)

    def reset_clock(self, cycle: int = 0) -> None:
        """Reset delivery timing (new program run)."""
        self._clock = cycle
        self._slots_used = 0
        self._block_until = cycle
        self._last_line = -1
        self._counted_cycle = -1

    def block_until(self, cycle: int, resteer: bool = False) -> None:
        """Stall delivery until *cycle* (redirect, flush, serialisation).

        With ``resteer=True`` the *target* line is treated as a fresh
        fetch (the DSB read pointer was clobbered).  Resteer-cycle PMU
        accounting is done by the core at the resolution site, where the
        resteer penalty is known.
        """
        if cycle > self._block_until:
            self._block_until = cycle
        if resteer:
            self._last_line = -1

    def dsb_contains(self, pc: int) -> bool:
        """Whether the fetch line holding *pc* is in the uop cache."""
        return (pc // FETCH_LINE) in self._dsb

    def prime_dsb(self, pc: int) -> None:
        """Pre-insert *pc*'s line (warmed-up loop assumption in tests)."""
        self._dsb_insert(pc // FETCH_LINE)

    def _dsb_insert(self, line: int) -> None:
        if line in self._dsb:
            self._dsb.move_to_end(line)
            return
        if len(self._dsb) >= self._dsb_lines:
            self._dsb.popitem(last=False)
        self._dsb[line] = True

    def deliver(
        self,
        pc: int,
        instruction: Instruction,
        earliest: int,
        user: bool = True,
        transient: bool = False,
        info=None,
        line: int = -1,
    ) -> Delivery:
        """Deliver *instruction*'s uops; returns the allocation cycle.

        *earliest* is the soonest the allocator could accept them (resource
        stalls computed by the core).  Delivery is in program-fetch order,
        so the internal clock only moves forward.

        *info*/*line* accept the pre-resolved decode metadata and fetch
        line from a :class:`~repro.uarch.plan.PlanEntry`; when omitted
        they are derived here (the legacy decode path).
        """
        clock = self._clock
        block = self._block_until
        start = clock if clock > block else block
        if earliest > start:
            start = earliest
        fetch_stall = 0
        counts = self.pmu.counts
        if info is None:
            info = instruction.info
        if line < 0:
            line = pc // FETCH_LINE
        if line != self._last_line:
            fetch = self.mmu.instruction_fetch(pc, user=user, now=start)
            l1i_latency = self._l1i_latency
            if fetch.latency > l1i_latency:
                fetch_stall = fetch.latency - l1i_latency
                counts["ICACHE_16B.IFDATA_STALL"] += fetch_stall
                start += fetch_stall
            if fetch.tlb_hit:
                counts["bp_l1_tlb_fetch_hit"] += 1
            counts["ic_fw32"] += 1
            if self._dsb_lookup(line):
                source = "dsb"
            else:
                source = "mite"
                start += self._mite_line_penalty
                self._dsb_insert(line)
            self._last_line = line
            self._last_source = source
        else:
            source = self._last_source

        uop_count = info.uop_count
        if info.microcoded:
            if source != "ms":
                start += self._ms_switch_penalty
            counts["IDQ.MS_UOPS"] += uop_count
            if self._last_source == "dsb":
                counts["IDQ.MS_DSB_CYCLES"] += 1
            else:
                counts["IDQ.MS_MITE_UOPS"] += uop_count
            source = "ms"
        elif source == "dsb":
            counts["IDQ.DSB_UOPS"] += uop_count
        # (plain MITE uop counts are visible through the cycle counters)

        # Width-limited allocation: issue_width uops per cycle.  The
        # one-uop-at-a-time loop reduces to a single divmod: starting at
        # ``slots_used`` slots consumed, placing ``uop_count`` more uops
        # advances the clock by ``(slots_used + uop_count - 1) // width``
        # and leaves ``(slots_used + uop_count - 1) % width + 1`` consumed.
        clock = self._clock
        slots_used = self._slots_used
        if start > clock:
            clock = start
            slots_used = 0
        if uop_count:
            advance, rem = divmod(slots_used + uop_count - 1, self._issue_width)
            clock += advance
            slots_used = rem + 1
        self._clock = clock
        self._slots_used = slots_used
        cycle = clock

        if cycle != self._counted_cycle:
            self._counted_cycle = cycle
            if source == "dsb":
                counts["IDQ.DSB_CYCLES_ANY"] += 1
                if uop_count >= self._issue_width:
                    counts["IDQ.DSB_CYCLES_OK"] += 1
            elif source == "mite":
                counts["IDQ.ALL_MITE_CYCLES_ANY_UOPS"] += 1

        return Delivery(cycle, source, uop_count, fetch_stall)

    def _dsb_lookup(self, line: int) -> bool:
        if line in self._dsb:
            self._dsb.move_to_end(line)
            return True
        return False
