"""The frontend: uop delivery from DSB, MITE or the microcode sequencer.

The paper's Table 3 shows the IDQ picture changing when a transient Jcc
triggers: fewer uops from the DSB, more from MITE, fewer from the MS, and
extra resteer cycles.  Those effects come from this model: a resteer
redirects fetch to a line that has usually fallen out of the DSB, forcing
the slower MITE path, and a blocked frontend delivers fewer microcoded
uops before the flush.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.isa.instructions import Instruction
from repro.memory.mmu import Mmu
from repro.uarch.config import CpuModel
from repro.uarch.pmu import PmuCounters

#: Instruction-fetch line size in bytes (matches ICACHE_16B granularity).
FETCH_LINE = 16


@dataclass
class Delivery:
    """When and whence one instruction's uops were delivered."""

    cycle: int
    source: str  # "dsb" | "mite" | "ms"
    uops: int
    fetch_stall: int


class Frontend:
    """Delivers decoded uops to the allocator with cycle accounting."""

    def __init__(self, model: CpuModel, mmu: Mmu, pmu: PmuCounters) -> None:
        self.model = model
        self.mmu = mmu
        self.pmu = pmu
        self._dsb: OrderedDict = OrderedDict()  # line -> True, LRU
        self._clock = 0
        self._slots_used = 0
        self._block_until = 0
        self._last_line = -1
        self._last_source = "dsb"
        # Distinct-cycle sets are too heavy for long runs; we count
        # transitions instead (each new allocation cycle counts once).
        self._counted_cycle = -1

    @property
    def delivery_floor(self) -> int:
        """Soonest cycle the next delivery could land (lower bound)."""
        return max(self._clock, self._block_until)

    def reset_clock(self, cycle: int = 0) -> None:
        """Reset delivery timing (new program run)."""
        self._clock = cycle
        self._slots_used = 0
        self._block_until = cycle
        self._last_line = -1
        self._counted_cycle = -1

    def block_until(self, cycle: int, resteer: bool = False) -> None:
        """Stall delivery until *cycle* (redirect, flush, serialisation).

        With ``resteer=True`` the *target* line is treated as a fresh
        fetch (the DSB read pointer was clobbered).  Resteer-cycle PMU
        accounting is done by the core at the resolution site, where the
        resteer penalty is known.
        """
        if cycle > self._block_until:
            self._block_until = cycle
        if resteer:
            self._last_line = -1

    def dsb_contains(self, pc: int) -> bool:
        """Whether the fetch line holding *pc* is in the uop cache."""
        return (pc // FETCH_LINE) in self._dsb

    def prime_dsb(self, pc: int) -> None:
        """Pre-insert *pc*'s line (warmed-up loop assumption in tests)."""
        self._dsb_insert(pc // FETCH_LINE)

    def _dsb_insert(self, line: int) -> None:
        if line in self._dsb:
            self._dsb.move_to_end(line)
            return
        if len(self._dsb) >= self.model.dsb_lines:
            self._dsb.popitem(last=False)
        self._dsb[line] = True

    def deliver(
        self,
        pc: int,
        instruction: Instruction,
        earliest: int,
        user: bool = True,
        transient: bool = False,
    ) -> Delivery:
        """Deliver *instruction*'s uops; returns the allocation cycle.

        *earliest* is the soonest the allocator could accept them (resource
        stalls computed by the core).  Delivery is in program-fetch order,
        so the internal clock only moves forward.
        """
        start = max(self._clock, self._block_until, earliest)
        fetch_stall = 0
        info = instruction.info

        line = pc // FETCH_LINE
        if line != self._last_line:
            fetch = self.mmu.instruction_fetch(pc, user=user, now=start)
            l1i_latency = self.model.l1i.latency
            if fetch.latency > l1i_latency:
                fetch_stall = fetch.latency - l1i_latency
                self.pmu.add("ICACHE_16B.IFDATA_STALL", fetch_stall)
                start += fetch_stall
            if fetch.tlb_hit:
                self.pmu.add("bp_l1_tlb_fetch_hit")
            self.pmu.add("ic_fw32")
            if self._dsb_lookup(line):
                source = "dsb"
            else:
                source = "mite"
                start += self.model.mite_line_penalty
                self._dsb_insert(line)
            self._last_line = line
            self._last_source = source
        else:
            source = self._last_source

        if info.microcoded:
            if source != "ms":
                start += self.model.ms_switch_penalty
            self.pmu.add("IDQ.MS_UOPS", info.uop_count)
            if self._last_source == "dsb":
                self.pmu.add("IDQ.MS_DSB_CYCLES")
            else:
                self.pmu.add("IDQ.MS_MITE_UOPS", info.uop_count)
            source = "ms"
        elif source == "dsb":
            self.pmu.add("IDQ.DSB_UOPS", info.uop_count)
        # (plain MITE uop counts are visible through the cycle counters)

        # Width-limited allocation: issue_width uops per cycle.
        if start > self._clock:
            self._clock = start
            self._slots_used = 0
        for _ in range(info.uop_count):
            if self._slots_used >= self.model.issue_width:
                self._clock += 1
                self._slots_used = 0
            self._slots_used += 1
        cycle = self._clock

        if cycle != self._counted_cycle:
            self._counted_cycle = cycle
            if source == "dsb":
                self.pmu.add("IDQ.DSB_CYCLES_ANY")
                if info.uop_count >= self.model.issue_width:
                    self.pmu.add("IDQ.DSB_CYCLES_OK")
            elif source == "mite":
                self.pmu.add("IDQ.ALL_MITE_CYCLES_ANY_UOPS")

        return Delivery(cycle=cycle, source=source, uops=info.uop_count, fetch_stall=fetch_stall)

    def _dsb_lookup(self, line: int) -> bool:
        if line in self._dsb:
            self._dsb.move_to_end(line)
            return True
        return False
