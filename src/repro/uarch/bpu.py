"""Branch prediction: pattern history table, BTB, and the return stack.

Three properties matter to the paper:

* the PHT is trained by *transient* executions too (speculative update),
  which is why the TET-MD loop's Jcc settles into a strong taken/not-taken
  prediction that only the secret-matching test value violates;
* the RSB predicts ``ret`` targets from call/return pairing, and a
  mismatching architectural return address (Listing 1's overwritten stack
  slot) makes every ``ret`` a misprediction -- Spectre-V5-RSB;
* mispredict counts feed the ``BR_MISP_EXEC.*`` events of Table 3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class PatternHistoryTable:
    """Per-address 2-bit saturating counters with a small global history.

    Indexing is gshare-like (PC xor history) so distinct gadget branches
    don't alias in the tests.
    """

    def __init__(self, entries: int = 4096, history_bits: int = 0) -> None:
        self.entries = entries
        self.history_bits = history_bits
        self._table: Dict[int, int] = {}
        self._history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) % self.entries

    def predict(self, pc: int) -> bool:
        """Predict taken/not-taken for the branch at *pc*."""
        counter = self._table.get(self._index(pc), 1)  # weakly not-taken
        return counter >= 2

    def update(self, pc: int, taken: bool) -> None:
        """Train on the resolved direction (speculative update: the core
        calls this when the branch *executes*, even transiently)."""
        index = self._index(pc)
        counter = self._table.get(index, 1)
        counter = min(3, counter + 1) if taken else max(0, counter - 1)
        self._table[index] = counter
        mask = (1 << self.history_bits) - 1
        self._history = ((self._history << 1) | int(taken)) & mask


class BranchTargetBuffer:
    """Direct-mapped target cache for taken branches."""

    def __init__(self, entries: int = 1024) -> None:
        self.entries = entries
        self._table: Dict[int, Tuple[int, int]] = {}
        self.lookups = 0
        self.correct = 0

    def predict(self, pc: int) -> Optional[int]:
        """Predicted target for the branch at *pc*, or ``None``."""
        self.lookups += 1
        entry = self._table.get((pc >> 2) % self.entries)
        if entry is None or entry[0] != pc:
            return None
        self.correct += 1
        return entry[1]

    def update(self, pc: int, target: int) -> None:
        """Record the resolved target of a taken branch."""
        self._table[(pc >> 2) % self.entries] = (pc, target)


class ReturnStackBuffer:
    """A fixed-depth return-address stack.

    Underflow falls back to the BTB-style behaviour of predicting nothing;
    overflow silently drops the oldest entry, both as on real parts.  The
    Spectre-V5 trick is not over/underflow but a *stale* entry: the RSB
    top is correct for the call, while the architectural return address on
    the stack was overwritten -- so the prediction is confidently wrong.
    """

    def __init__(self, depth: int = 16) -> None:
        self.depth = depth
        self._stack: List[int] = []

    def push(self, return_address: int) -> None:
        """Record *return_address* on a ``call``."""
        if len(self._stack) >= self.depth:
            del self._stack[0]
        self._stack.append(return_address)

    def pop_prediction(self) -> Optional[int]:
        """Predict a ``ret`` target; ``None`` on underflow."""
        if not self._stack:
            return None
        return self._stack.pop()

    def clear(self) -> None:
        """Empty the stack (context switch / explicit RSB stuffing)."""
        self._stack.clear()

    def __len__(self) -> int:
        return len(self._stack)


class BranchPredictor:
    """The complete BPU: PHT + BTB + RSB with one prediction interface."""

    def __init__(self, pht_entries: int = 4096, btb_entries: int = 1024, rsb_depth: int = 16) -> None:
        self.pht = PatternHistoryTable(entries=pht_entries)
        self.btb = BranchTargetBuffer(entries=btb_entries)
        self.rsb = ReturnStackBuffer(depth=rsb_depth)
        self.conditional_predictions = 0
        self.conditional_mispredicts = 0

    def predict_conditional(self, pc: int, taken_target: int) -> Tuple[bool, int]:
        """Predict a Jcc at *pc*: returns (taken?, next fetch pc target).

        The not-taken target (fall-through) is supplied by the caller's
        fetch logic; this returns the *taken* target when predicting taken.
        """
        self.conditional_predictions += 1
        return self.pht.predict(pc), taken_target

    def resolve_conditional(self, pc: int, predicted: bool, actual: bool) -> bool:
        """Train the PHT; return whether this was a misprediction."""
        self.pht.update(pc, actual)
        mispredicted = predicted != actual
        if mispredicted:
            self.conditional_mispredicts += 1
        return mispredicted

    def on_call(self, return_address: int, target: int, pc: int) -> None:
        """Record a ``call``: push the RSB, train the BTB."""
        self.rsb.push(return_address)
        self.btb.update(pc, target)

    def predict_return(self) -> Optional[int]:
        """Predict a ``ret`` target from the RSB (pops the entry)."""
        return self.rsb.pop_prediction()
