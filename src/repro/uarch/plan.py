"""Decoded-uop plans: the per-``(Program, CpuModel)`` decode cache.

Every :meth:`Core.run` used to re-derive the same per-instruction facts
on every fetch of every trial: opcode-table lookups (``instruction.info``
hashes an enum into ``OP_INFO``), handler dispatch (another enum hash
into the core's handler table), fall-through PC arithmetic, fetch-line
numbers, address-validity checks.  For a campaign that runs one gadget
millions of times, that decode work dominated the hot loop.

A :class:`DecodedPlan` does it once.  It is an immutable per-PC table of
:class:`PlanEntry` uop templates -- handler, uop count, static decode
metadata, fetch line, fall-through and branch-target addresses, fault
class -- keyed by virtual address, built the first time a program runs on
a model and reused for every subsequent run.  Plans cache on the
:class:`~repro.isa.program.Program` instance itself (programs are
identity-hashed and treated as immutable once assembled), keyed by model
name: decode metadata is per-ISA, but keying per model keeps the door
open for model-specific decode quirks without invalidation machinery.

The plan carries **no dynamic state** -- branch predictors, caches, the
register file and all timing live in the core -- so sharing one plan
across runs (or across cores simulating the same model) cannot couple
their results.  The legacy fetch-decode path remains in the core behind
``Core.run(..., decode_plan=False)``; the property suite drives random
programs down both paths and asserts identical cycles, PMU counters and
fault lists.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional

from repro.isa.instructions import Instruction
from repro.isa.opcodes import Op, OpInfo
from repro.isa.program import INSTRUCTION_SIZE, Program
from repro.uarch.config import CpuModel
from repro.uarch.frontend import FETCH_LINE

#: Attribute under which plans cache on a Program (one dict per program,
#: model name -> DecodedPlan).
_PLAN_ATTR = "_decoded_plans"

#: Process-wide decode-plan cache statistics: plans built vs cache hits,
#: one increment per ``Core.run``.  Cumulative over the process lifetime
#: and therefore worker-count dependent -- the telemetry layer reports
#: per-trial deltas as host-dependent (``det=False``) counters.
PLAN_STATS = {"builds": 0, "hits": 0}


class PlanEntry:
    """One decoded instruction slot: everything the dispatch loop needs
    that does not change between runs."""

    __slots__ = (
        "index",
        "pc",
        "instruction",
        "op",
        "handler",
        "uop_count",
        "info",
        "microcoded",
        "base_latency",
        "line",
        "fall_through",
        "target_addr",
        "target_index",
        "fault_class",
    )

    def __init__(
        self,
        index: int,
        pc: int,
        instruction: Instruction,
        handler: Optional[Callable],
        target_index: Optional[int],
    ) -> None:
        info: OpInfo = instruction.info
        self.index = index
        self.pc = pc
        self.instruction = instruction
        self.op = instruction.op
        self.handler = handler
        self.uop_count = info.uop_count
        self.info = info
        self.microcoded = info.microcoded
        self.base_latency = info.base_latency
        self.line = pc // FETCH_LINE
        self.fall_through = pc + INSTRUCTION_SIZE
        self.target_addr = instruction.target_addr
        self.target_index = target_index
        self.fault_class = _fault_class(instruction)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PlanEntry({self.index}, {self.pc:#x}, {self.instruction})"


def _fault_class(instruction: Instruction) -> str:
    """Static fault classification for one instruction.

    ``"memory"`` covers every op routed through the core's fault plumbing
    (loads, stores, and the stack traffic of call/ret); ``"control"`` is
    the non-faulting control flow; ``"none"`` cannot fault.  Prefetches
    translate but never fault (the paper's §4.2 probe primitive), so they
    classify as ``"none"``.
    """
    info = instruction.info
    if instruction.op is Op.PREFETCH:
        return "none"
    if info.is_load or info.is_store:
        return "memory"
    if info.is_branch:
        return "control"
    return "none"


class DecodedPlan:
    """The immutable decoded form of one program for one CPU model."""

    __slots__ = ("program", "model_name", "base", "entries", "by_pc")

    def __init__(
        self,
        program: Program,
        model_name: str,
        handler_table: Mapping[Op, Callable],
    ) -> None:
        self.program = program
        self.model_name = model_name
        self.base = program.base
        pc_of = program.address_of_index
        contains = program.contains_address
        entries: List[PlanEntry] = []
        for index, instruction in enumerate(program.instructions):
            target_addr = instruction.target_addr
            target_index = (
                program.index_of_address(target_addr)
                if target_addr is not None and contains(target_addr)
                else None
            )
            entries.append(
                PlanEntry(
                    index=index,
                    pc=pc_of(index),
                    instruction=instruction,
                    # A missing handler stays None: the core raises only
                    # if the instruction is actually reached, exactly as
                    # the legacy per-fetch dispatch did.
                    handler=handler_table.get(instruction.op),
                    target_index=target_index,
                )
            )
        self.entries = entries
        self.by_pc: Dict[int, PlanEntry] = {entry.pc: entry for entry in entries}

    def __len__(self) -> int:
        return len(self.entries)

    def lookup(self, pc: int) -> Optional[PlanEntry]:
        """The entry at virtual *pc*, or None when *pc* is off-program."""
        return self.by_pc.get(pc)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DecodedPlan({len(self.entries)} entries at {self.base:#x} "
            f"for {self.model_name!r})"
        )


def plan_for(
    program: Program,
    model: CpuModel,
    handler_table: Mapping[Op, Callable],
) -> DecodedPlan:
    """The cached plan for ``(program, model)``, building it on first use.

    The cache rides on the program instance (``Program`` is identity
    hashed and never mutated after assembly), so plan lifetime equals
    program lifetime and a worker's per-process gadget cache keeps its
    plans across millions of trials for free.
    """
    plans = getattr(program, _PLAN_ATTR, None)
    if plans is None:
        plans = {}
        setattr(program, _PLAN_ATTR, plans)
    plan = plans.get(model.name)
    if plan is None:
        plan = DecodedPlan(program, model.name, handler_table)
        plans[model.name] = plan
        PLAN_STATS["builds"] += 1
    else:
        PLAN_STATS["hits"] += 1
    return plan
