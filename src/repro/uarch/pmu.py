"""Performance-monitoring counters.

Every event named in the paper's Table 3 is implemented; the pipeline and
memory subsystem increment them as a side effect of simulation, and the
PMU toolset (:mod:`repro.pmutools`) reads them exactly the way the paper's
toolset reads MSRs.  Events carry a vendor so the toolset only collects
what a given CPU model exposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

INTEL = "intel"
AMD = "amd"


@dataclass(frozen=True)
class PmuEvent:
    """One countable event."""

    name: str
    vendor: str
    description: str
    #: Event domain, used by the toolset's offline stage to group findings
    #: into frontend / backend / memory, mirroring §5.2's RQ1-RQ3 split.
    domain: str


#: The full event catalogue.  Table 3's rows all appear here; a few extra
#: events are included so the toolset's differential filter has something
#: to discard (the paper stresses most of the hundreds of events are
#: irrelevant and must be filtered out).
EVENTS: List[PmuEvent] = [
    # -- frontend (RQ1) ----------------------------------------------------
    PmuEvent("BR_MISP_EXEC.INDIRECT", INTEL, "mispredicted indirect branches executed", "frontend"),
    PmuEvent("BR_MISP_EXEC.ALL_BRANCHES", INTEL, "mispredicted branches executed", "frontend"),
    PmuEvent("IDQ.DSB_UOPS", INTEL, "uops delivered from the DSB (uop cache)", "frontend"),
    PmuEvent("IDQ.MS_DSB_CYCLES", INTEL, "cycles MS delivering while DSB active", "frontend"),
    PmuEvent("IDQ.DSB_CYCLES_OK", INTEL, "cycles DSB delivered full width", "frontend"),
    PmuEvent("IDQ.DSB_CYCLES_ANY", INTEL, "cycles DSB delivered any uops", "frontend"),
    PmuEvent("IDQ.MS_MITE_UOPS", INTEL, "uops from MITE while MS busy", "frontend"),
    PmuEvent("IDQ.ALL_MITE_CYCLES_ANY_UOPS", INTEL, "cycles MITE delivered any uops", "frontend"),
    PmuEvent("IDQ.MS_UOPS", INTEL, "uops delivered by the microcode sequencer", "frontend"),
    PmuEvent("ICACHE_16B.IFDATA_STALL", INTEL, "cycles stalled on L1I fetch data", "frontend"),
    PmuEvent("INT_MISC.CLEAR_RESTEER_CYCLES", INTEL, "cycles frontend resteers after clears", "frontend"),
    # -- backend / pipeline (RQ2) ------------------------------------------
    PmuEvent("RESOURCE_STALLS.ANY", INTEL, "allocation stalls on backend resources", "backend"),
    PmuEvent("CYCLE_ACTIVITY.STALLS_TOTAL", INTEL, "total execution stall cycles", "backend"),
    PmuEvent("UOPS_EXECUTED.STALL_CYCLES", INTEL, "cycles with no uop executed", "backend"),
    PmuEvent("UOPS_EXECUTED.CORE_CYCLES_NONE", INTEL, "core cycles with no uop executed", "backend"),
    PmuEvent("INT_MISC.RECOVERY_CYCLES", INTEL, "cycles allocator stalled for recovery", "backend"),
    PmuEvent("INT_MISC.RECOVERY_CYCLES_ANY", INTEL, "recovery cycles, any thread", "backend"),
    PmuEvent("UOPS_ISSUED.ANY", INTEL, "uops issued by the allocator", "backend"),
    PmuEvent("UOPS_ISSUED.STALL_CYCLES", INTEL, "cycles the allocator issued nothing", "backend"),
    PmuEvent("RS_EVENTS.EMPTY_CYCLES", INTEL, "cycles the reservation station was empty", "backend"),
    PmuEvent("UOPS_RETIRED.RETIRE_SLOTS", INTEL, "retirement slots used", "backend"),
    PmuEvent("MACHINE_CLEARS.COUNT", INTEL, "machine clears (any cause)", "backend"),
    # -- memory subsystem (RQ3) --------------------------------------------
    PmuEvent("CYCLE_ACTIVITY.CYCLES_MEM_ANY", INTEL, "cycles with in-flight memory uops", "memory"),
    PmuEvent("DTLB_LOAD_MISSES.MISS_CAUSES_A_WALK", INTEL, "DTLB load misses starting a walk", "memory"),
    PmuEvent("DTLB_LOAD_MISSES.WALK_ACTIVE", INTEL, "cycles a D-side page walk was active", "memory"),
    PmuEvent("ITLB_MISSES.WALK_ACTIVE", INTEL, "cycles an I-side page walk was active", "memory"),
    PmuEvent("MEM_LOAD_RETIRED.L1_MISS", INTEL, "retired loads that missed L1D", "memory"),
    PmuEvent("LONGEST_LAT_CACHE.MISS", INTEL, "LLC misses", "memory"),
    # -- AMD Zen 3 equivalents (Table 3's Ryzen rows) -----------------------
    PmuEvent("bp_l1_btb_correct", AMD, "L1 BTB corrections / correct predicts", "frontend"),
    PmuEvent("bp_l1_tlb_fetch_hit", AMD, "instruction fetches hitting the L1 ITLB", "frontend"),
    PmuEvent("de_dis_uop_queue_empty_di0", AMD, "cycles the dispatch uop queue was empty", "frontend"),
    PmuEvent(
        "de_dis_dispatch_token_stalls2.retire_token_stall",
        AMD,
        "dispatch stalls waiting on retire tokens",
        "backend",
    ),
    PmuEvent("ic_fw32", AMD, "32-byte instruction fetch windows", "frontend"),
]

EVENTS_BY_NAME: Dict[str, PmuEvent] = {event.name: event for event in EVENTS}


def events_for_vendor(vendor: str) -> List[PmuEvent]:
    """Events a CPU of *vendor* exposes (the toolset's preparation stage)."""
    return [event for event in EVENTS if event.vendor == vendor]


class PmuCounters:
    """A bank of counters, one per catalogue event.

    Supports the read/reset/snapshot-delta operations the PMU toolset's
    online collection stage needs.  Unknown event names raise so typos in
    the pipeline's instrumentation fail loudly.
    """

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {event.name: 0 for event in EVENTS}
        #: Fast-path alias for pipeline-internal incrementers: hot sites
        #: (the frontend and the core's dispatch loop) bump
        #: ``counts[name] += n`` directly, skipping a method call per
        #: event.  Same dict, same unknown-name behaviour (KeyError).
        self.counts = self._counts

    def add(self, name: str, amount: int = 1) -> None:
        """Increment *name* by *amount*."""
        try:
            self._counts[name] += amount
        except KeyError:
            raise KeyError(f"unknown PMU event {name!r}") from None

    def read(self, name: str) -> int:
        """Current value of *name*."""
        return self._counts[name]

    def reset(self, names: Iterable[str] = ()) -> None:
        """Reset the given events, or everything when *names* is empty."""
        targets = list(names) or list(self._counts)
        for name in targets:
            if name not in self._counts:
                raise KeyError(f"unknown PMU event {name!r}")
            self._counts[name] = 0

    def snapshot(self) -> Dict[str, int]:
        """Copy of all current values."""
        return dict(self._counts)

    def restore(self, snapshot: Dict[str, int]) -> None:
        """Overwrite every counter with a prior :meth:`snapshot`.

        Lets a caller run throwaway work (warm-up trials) without the
        counters remembering it: snapshot, run, restore.
        """
        for name in self._counts:
            self._counts[name] = snapshot.get(name, 0)

    def delta(self, baseline: Dict[str, int]) -> Dict[str, int]:
        """Per-event difference against a prior :meth:`snapshot`."""
        return {name: value - baseline.get(name, 0) for name, value in self._counts.items()}

    def nonzero(self) -> Dict[str, int]:
        """All events with a nonzero count (for quick inspection)."""
        return {name: value for name, value in self._counts.items() if value}
