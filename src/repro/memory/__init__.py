"""Memory-subsystem substrate: physical memory, paging, TLBs and caches.

The TET-KASLR half of the paper lives here: whether a faulting probe's
virtual address is *mapped* (supervisor-only, permission fault) or
*unmapped* (not-present fault) changes how the page walker and TLBs behave,
which changes the time of the transient window.  Table 3's
``DTLB_LOAD_MISSES.*`` / ``ITLB_MISSES.WALK_ACTIVE`` rows are produced by
these models.

* :mod:`repro.memory.physical` -- sparse byte-addressable physical memory.
* :mod:`repro.memory.paging` -- 4-level x86-64 page tables with 4 KiB and
  2 MiB pages.
* :mod:`repro.memory.walker` -- the hardware page walker with
  paging-structure caches and a busy/queueing model.
* :mod:`repro.memory.tlb` -- set-associative split TLBs with the
  fill-on-faulting-access behaviour the paper exploits.
* :mod:`repro.memory.cache` -- L1D/L1I/L2/LLC hierarchy with ``clflush``.
* :mod:`repro.memory.lfb` -- line fill buffers (ZombieLoad's stale data).
* :mod:`repro.memory.mmu` -- the facade the core talks to.
"""

from repro.memory.cache import Cache, CacheHierarchy
from repro.memory.lfb import LineFillBuffer
from repro.memory.mmu import AccessResult, Fault, FaultKind, Mmu
from repro.memory.paging import AddressSpace, PageSize, Pte
from repro.memory.physical import PhysicalMemory
from repro.memory.tlb import Tlb, TlbEntry
from repro.memory.walker import PageWalker, WalkResult

__all__ = [
    "AccessResult",
    "AddressSpace",
    "Cache",
    "CacheHierarchy",
    "Fault",
    "FaultKind",
    "LineFillBuffer",
    "Mmu",
    "PageSize",
    "PageWalker",
    "PhysicalMemory",
    "Pte",
    "Tlb",
    "TlbEntry",
    "WalkResult",
]
