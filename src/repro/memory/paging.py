"""Four-level x86-64 page tables with 4 KiB and 2 MiB pages.

The table tree is an explicit radix structure; every table node also gets a
synthetic *physical* address so the hardware page walker can fetch entries
through the cache hierarchy, which is where "unmapped addresses make the
walk longer" (the paper's RQ3 answer) comes from mechanistically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

VA_BITS = 48
CANONICAL_MASK = (1 << VA_BITS) - 1

#: Radix levels, leaf-first names follow the x86 convention.
LEVEL_NAMES = ("PML4", "PDPT", "PD", "PT")
LEVEL_SHIFTS = (39, 30, 21, 12)

#: Physical region where synthetic page-table frames live (above 4 GiB so
#: they never collide with mapped data frames in our experiments).
TABLE_FRAME_BASE = 0x1_0000_0000


class PageSize(enum.IntEnum):
    """Supported translation granularities."""

    SIZE_4K = 1 << 12
    SIZE_2M = 1 << 21


@dataclass
class Pte:
    """A leaf page-table entry (what the TLB caches).

    ``global_`` entries survive address-space switches (kernel pages and
    the KPTI trampoline); ``user`` distinguishes supervisor-only mappings
    whose *presence* TET-KASLR detects.
    """

    pfn: int
    present: bool = True
    writable: bool = True
    user: bool = False
    global_: bool = False
    nx: bool = False
    page_size: PageSize = PageSize.SIZE_4K
    #: Free-form tag, e.g. "kernel-text", "flare-dummy"; used by tests.
    tag: str = ""

    def physical_address(self, va: int) -> int:
        """Translate *va* through this entry."""
        # IntEnum arithmetic yields plain ints; no coercion needed here.
        return (self.pfn << 12) + (va & (self.page_size - 1))


@dataclass
class _TableNode:
    """One table page in the radix tree."""

    level: int
    table_paddr: int
    entries: Dict[int, object] = field(default_factory=dict)  # index -> _TableNode | Pte


@dataclass(frozen=True)
class WalkStep:
    """One level touched during a hardware walk."""

    level: int
    level_name: str
    entry_paddr: int
    present: bool
    is_leaf: bool


class AddressSpace:
    """A 4-level page-table tree plus the software operations the kernel
    substrate uses to build address spaces (map, unmap, protect, fork-lite).
    """

    _next_table_frame = 0

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.root = self._new_node(0)

    @classmethod
    def _new_node(cls, level: int) -> _TableNode:
        paddr = TABLE_FRAME_BASE + cls._next_table_frame * int(PageSize.SIZE_4K)
        cls._next_table_frame += 1
        return _TableNode(level=level, table_paddr=paddr)

    @staticmethod
    def _index(va: int, level: int) -> int:
        return (va >> LEVEL_SHIFTS[level]) & 0x1FF

    @staticmethod
    def _leaf_level(size: PageSize) -> int:
        return 3 if size == PageSize.SIZE_4K else 2

    def map_page(
        self,
        va: int,
        paddr: int,
        size: PageSize = PageSize.SIZE_4K,
        writable: bool = True,
        user: bool = False,
        global_: bool = False,
        nx: bool = False,
        tag: str = "",
    ) -> Pte:
        """Map virtual page containing *va* to physical *paddr*.

        *va* and *paddr* are truncated to the page boundary of *size*.
        Intermediate table nodes are created on demand.  Returns the leaf
        :class:`Pte`.
        """
        va &= CANONICAL_MASK
        page_mask = int(size) - 1
        if va & page_mask:
            va &= ~page_mask
        leaf_level = self._leaf_level(size)
        node = self.root
        for level in range(leaf_level):
            index = self._index(va, level)
            child = node.entries.get(index)
            if not isinstance(child, _TableNode):
                child = self._new_node(level + 1)
                node.entries[index] = child
            node = child
        pte = Pte(
            pfn=(paddr & ~page_mask) >> 12,
            writable=writable,
            user=user,
            global_=global_,
            nx=nx,
            page_size=size,
            tag=tag,
        )
        node.entries[self._index(va, leaf_level)] = pte
        return pte

    def unmap(self, va: int) -> bool:
        """Remove the mapping covering *va*; return whether one existed."""
        va &= CANONICAL_MASK
        node = self.root
        for level in range(4):
            index = self._index(va, level)
            child = node.entries.get(index)
            if child is None:
                return False
            if isinstance(child, Pte):
                del node.entries[index]
                return True
            node = child
        return False

    def lookup(self, va: int) -> Optional[Pte]:
        """Software walk: return the leaf PTE covering *va*, or ``None``."""
        va &= CANONICAL_MASK
        node = self.root
        for level in range(4):
            index = self._index(va, level)
            child = node.entries.get(index)
            if child is None:
                return None
            if isinstance(child, Pte):
                return child if child.present else None
            node = child
        return None

    def walk_path(self, va: int) -> Tuple[List[WalkStep], Optional[Pte]]:
        """Describe the hardware walk for *va*.

        Returns the ordered list of :class:`WalkStep` the walker performs
        and the leaf PTE (``None`` for a not-present termination).  A walk
        for an unmapped address still touches every level down to the one
        where it terminates -- on a populated kernel range that is usually
        the full depth, which is why unmapped probes are slow.
        """
        va &= CANONICAL_MASK
        steps: List[WalkStep] = []
        node = self.root
        for level in range(4):
            index = self._index(va, level)
            entry_paddr = node.table_paddr + index * 8
            child = node.entries.get(index)
            if child is None:
                steps.append(WalkStep(level, LEVEL_NAMES[level], entry_paddr, False, True))
                return steps, None
            if isinstance(child, Pte):
                steps.append(
                    WalkStep(level, LEVEL_NAMES[level], entry_paddr, child.present, True)
                )
                return steps, (child if child.present else None)
            steps.append(WalkStep(level, LEVEL_NAMES[level], entry_paddr, True, False))
            node = child
        raise AssertionError("walk descended past PT level")  # pragma: no cover

    def mapped_ranges_count(self) -> int:
        """Total number of leaf PTEs (for tests)."""

        def count(node: _TableNode) -> int:
            total = 0
            for child in node.entries.values():
                if isinstance(child, Pte):
                    total += 1
                else:
                    total += count(child)
            return total

        return count(self.root)

    def clone_shared(self, name: str = "") -> "AddressSpace":
        """Return a new address space sharing no structure (deep copy of
        the mapping set).  Used to derive KPTI user-side tables."""
        clone = AddressSpace(name=name or f"{self.name}-clone")

        def copy(node: _TableNode, target: _TableNode) -> None:
            for index, child in node.entries.items():
                if isinstance(child, Pte):
                    target.entries[index] = Pte(
                        pfn=child.pfn,
                        present=child.present,
                        writable=child.writable,
                        user=child.user,
                        global_=child.global_,
                        nx=child.nx,
                        page_size=child.page_size,
                        tag=child.tag,
                    )
                else:
                    new_child = self._new_node(child.level)
                    target.entries[index] = new_child
                    copy(child, new_child)

        copy(self.root, clone.root)
        return clone
