"""Set-associative cache hierarchy with ``clflush`` support.

Caches track line *presence and recency* (hit/miss timing, flush, evict);
data values always come from :class:`~repro.memory.physical.PhysicalMemory`
so coherence bugs are impossible by construction.  That is all the paper's
experiments need: Flush+Reload (the baseline covert channel) and the
transient-window-length effects both depend only on hit/miss latency.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

LINE_SHIFT = 6
LINE_SIZE = 1 << LINE_SHIFT


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape/latency of one cache level."""

    name: str
    size_bytes: int
    ways: int
    latency: int

    @property
    def sets(self) -> int:
        return max(1, self.size_bytes // (LINE_SIZE * self.ways))


class Cache:
    """One set-associative, LRU cache level (presence only)."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._sets: Dict[int, OrderedDict] = {}
        self.hits = 0
        self.misses = 0
        # Geometry constants and the (immutable) hit outcome, hoisted off
        # the per-access path.
        self._set_count = geometry.sets
        self._way_count = geometry.ways
        self.hit_outcome = MemoryAccessOutcome(geometry.latency, geometry.name)

    def _set_for(self, paddr: int) -> Tuple[int, int]:
        line = paddr >> LINE_SHIFT
        return line % self._set_count, line

    def probe(self, paddr: int) -> bool:
        """Whether the line holding *paddr* is present (no state change)."""
        line = paddr >> LINE_SHIFT
        return line in self._sets.get(line % self._set_count, ())

    def touch(self, paddr: int) -> bool:
        """Look up *paddr*; on hit refresh LRU.  Returns hit/miss."""
        line = paddr >> LINE_SHIFT
        ways = self._sets.get(line % self._set_count)
        if ways is not None and line in ways:
            ways.move_to_end(line)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, paddr: int) -> Optional[int]:
        """Insert the line holding *paddr*; return evicted line or None."""
        line = paddr >> LINE_SHIFT
        ways = self._sets.setdefault(line % self._set_count, OrderedDict())
        if line in ways:
            ways.move_to_end(line)
            return None
        evicted = None
        if len(ways) >= self._way_count:
            evicted, _ = ways.popitem(last=False)
        ways[line] = True
        return evicted

    def flush_line(self, paddr: int) -> bool:
        """Remove the line holding *paddr*; return whether it was present."""
        set_index, line = self._set_for(paddr)
        ways = self._sets.get(set_index)
        if ways is not None and line in ways:
            del ways[line]
            return True
        return False

    def flush_all(self) -> None:
        """Empty the cache."""
        self._sets.clear()

    def evict_set_of(self, paddr: int) -> None:
        """Empty the set that *paddr* maps to (Prime+Probe-style eviction)."""
        set_index, _ = self._set_for(paddr)
        self._sets.pop(set_index, None)

    @property
    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets.values())


@dataclass(frozen=True)
class MemoryAccessOutcome:
    """Result of a hierarchy access: latency and the level that hit."""

    latency: int
    hit_level: str  # "L1", "L2", "LLC" or "DRAM"


class CacheHierarchy:
    """L1D + L1I + unified L2 + LLC with inclusive fills.

    ``data_access``/``inst_access`` return the latency of the access and
    fill all levels on the way in.  ``clflush`` removes a line everywhere,
    exactly what the paper's gadgets use to lengthen transient windows.
    """

    def __init__(
        self,
        l1d: CacheGeometry,
        l1i: CacheGeometry,
        l2: CacheGeometry,
        llc: CacheGeometry,
        dram_latency: int = 200,
    ) -> None:
        self.l1d = Cache(l1d)
        self.l1i = Cache(l1i)
        self.l2 = Cache(l2)
        self.llc = Cache(llc)
        self.dram_latency = dram_latency
        #: Total clflush operations (the cache-attack detector's feature).
        self.clflush_count = 0
        # Outcomes are immutable and fully determined by the hit level, so
        # one instance per level serves every access.
        self._l2_outcome = MemoryAccessOutcome(l2.latency, "L2")
        self._llc_outcome = MemoryAccessOutcome(llc.latency, "LLC")
        self._dram_outcome = MemoryAccessOutcome(dram_latency, "DRAM")

    def _access(self, first_level: Cache, paddr: int) -> MemoryAccessOutcome:
        if first_level.touch(paddr):
            return first_level.hit_outcome
        if self.l2.touch(paddr):
            first_level.fill(paddr)
            return self._l2_outcome
        if self.llc.touch(paddr):
            first_level.fill(paddr)
            self.l2.fill(paddr)
            return self._llc_outcome
        first_level.fill(paddr)
        self.l2.fill(paddr)
        self.llc.fill(paddr)
        return self._dram_outcome

    def data_access(self, paddr: int) -> MemoryAccessOutcome:
        """Access *paddr* through the data side (L1D -> L2 -> LLC -> DRAM)."""
        return self._access(self.l1d, paddr)

    def inst_access(self, paddr: int) -> MemoryAccessOutcome:
        """Access *paddr* through the instruction side."""
        return self._access(self.l1i, paddr)

    def clflush(self, paddr: int) -> None:
        """Flush the line holding *paddr* from every level."""
        self.clflush_count += 1
        for cache in (self.l1d, self.l1i, self.l2, self.llc):
            cache.flush_line(paddr)

    def flush_all(self) -> None:
        """Empty the entire hierarchy (cold-cache experiment setup)."""
        for cache in (self.l1d, self.l1i, self.l2, self.llc):
            cache.flush_all()

    def data_resident(self, paddr: int) -> bool:
        """Whether *paddr*'s line is in L1D (Flush+Reload's question)."""
        return self.l1d.probe(paddr) or self.l2.probe(paddr) or self.llc.probe(paddr)
