"""The hardware page walker.

A walk fetches one entry per level through the *data cache hierarchy* and
keeps paging-structure caches (PSCs) for the non-leaf levels.  Two
properties matter for the paper:

* A walk for an **unmapped** address cannot be short-circuited by the TLB,
  so every probe repeats the multi-level traversal --
  ``DTLB_LOAD_MISSES.WALK_ACTIVE`` grows (Table 3).
* The walker is a single shared resource; a concurrent request (e.g. an
  instruction-side translation after the TLB flush) queues behind an
  in-flight walk, which is how ``ITLB_MISSES.WALK_ACTIVE`` becomes nonzero
  only in the unmapped case.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.memory.cache import CacheHierarchy
from repro.memory.paging import AddressSpace, Pte, WalkStep


@dataclass
class WalkResult:
    """Outcome of one hardware page walk."""

    pte: Optional[Pte]
    steps: List[WalkStep]
    latency: int
    queue_delay: int
    psc_hits: int
    entry_fetches: int
    #: Per-step ``(level, entry_paddr, present, is_leaf, psc_hit,
    #: hit_level)`` tuples, recorded only while the walker's
    #: ``record_details`` flag is armed (trace capture); ``hit_level`` is
    #: None on a PSC hit (no cache access happened).
    step_details: Optional[tuple] = None

    @property
    def present(self) -> bool:
        return self.pte is not None

    @property
    def levels_touched(self) -> int:
        return len(self.steps)


class PageWalker:
    """Walks page tables, caching upper-level entries in a PSC.

    ``busy_until`` implements the shared-resource queueing: callers pass
    the current cycle and receive the queue delay as part of the walk
    latency.
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy,
        psc_entries: int = 32,
        setup_cost: int = 3,
        not_present_cost: int = 0,
    ) -> None:
        self.hierarchy = hierarchy
        self.psc_entries = psc_entries
        self.setup_cost = setup_cost
        #: Extra cycles to signal a terminal not-present entry.  Zero by
        #: default: a mapped-but-forbidden and an unmapped walk that
        #: terminate at the same level cost the same, so the *only*
        #: mapped-address oracle is the TLB fill-on-fault behaviour --
        #: which is exactly the paper's root-cause claim (§5.2.4), and
        #: why TET-KASLR fails on parts that check permissions first.
        self.not_present_cost = not_present_cost
        self._psc: OrderedDict = OrderedDict()
        self.busy_until = 0
        self.walks = 0
        self.walk_cycles = 0
        #: Armed by the MMU while a trace is being recorded: walks then
        #: carry ``step_details`` for the batch executor's translation
        #: shadow.  Off by default -- the detail tuples cost allocations
        #: on the hot path.
        self.record_details = False

    def flush_psc(self) -> None:
        """Drop all cached paging-structure entries (full TLB flush)."""
        self._psc.clear()

    def _psc_lookup(self, key: Tuple[int, int]) -> bool:
        if key in self._psc:
            self._psc.move_to_end(key)
            return True
        return False

    def _psc_fill(self, key: Tuple[int, int]) -> None:
        if key in self._psc:
            self._psc.move_to_end(key)
            return
        if len(self._psc) >= self.psc_entries:
            self._psc.popitem(last=False)
        self._psc[key] = True

    def walk(self, space: AddressSpace, va: int, now: int = 0) -> WalkResult:
        """Perform a hardware walk of *space* for *va* starting at cycle *now*."""
        steps, pte = space.walk_path(va)
        queue_delay = max(0, self.busy_until - now)
        latency = self.setup_cost
        psc_hits = 0
        entry_fetches = 0
        details = [] if self.record_details else None
        for step in steps:
            key = (step.level, (va >> 12) >> (9 * (3 - step.level)))
            if not step.is_leaf and self._psc_lookup(key):
                psc_hits += 1
                latency += 1
                if details is not None:
                    details.append(
                        (step.level, step.entry_paddr, step.present,
                         step.is_leaf, True, None)
                    )
                continue
            outcome = self.hierarchy.data_access(step.entry_paddr)
            entry_fetches += 1
            latency += outcome.latency
            if details is not None:
                details.append(
                    (step.level, step.entry_paddr, step.present,
                     step.is_leaf, False, outcome.hit_level)
                )
            if not step.is_leaf and step.present:
                self._psc_fill(key)
        if pte is None:
            latency += self.not_present_cost
        self.walks += 1
        self.walk_cycles += latency
        self.busy_until = now + queue_delay + latency
        return WalkResult(
            pte=pte,
            steps=steps,
            latency=queue_delay + latency,
            queue_delay=queue_delay,
            psc_hits=psc_hits,
            entry_fetches=entry_fetches,
            step_details=tuple(details) if details is not None else None,
        )
