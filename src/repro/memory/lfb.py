"""Line fill buffers -- ZombieLoad's stale-data source.

Real LFBs track in-flight cache-line fills; their payload can linger after
the fill completes, and on MDS-vulnerable parts a faulting load's microcode
assist can forward whatever stale entry matches (no address control --
that's why ZombieLoad *samples*).  We model a small FIFO of recent fills
with a captured data snapshot; :meth:`sample_stale` hands back one of them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional


@dataclass(frozen=True)
class LfbEntry:
    """One fill buffer entry: line address, snapshot and owning thread."""

    paddr_line: int
    data: bytes  # 64-byte snapshot captured when the fill completed
    thread_id: int


class LineFillBuffer:
    """A FIFO of the most recent line fills, shared between SMT siblings.

    Sharing between hardware threads is the cross-thread leak in
    ZombieLoad: the victim sibling's fills sit in the same structure the
    attacker's assist reads from.
    """

    def __init__(self, entries: int = 12) -> None:
        self.capacity = entries
        self._entries: Deque[LfbEntry] = deque(maxlen=entries)
        self._sample_cursor = 0

    def record_fill(self, paddr_line: int, data: bytes, thread_id: int = 0) -> None:
        """Record a completed fill of *paddr_line* with snapshot *data*."""
        self._entries.append(LfbEntry(paddr_line, bytes(data), thread_id))

    def sample_stale(self, offset_in_line: int = 0) -> Optional[int]:
        """Return one stale byte, rotating through live entries.

        Models the attacker's lack of control over *which* entry the
        assist forwards: successive faulting loads see successive entries.
        Returns ``None`` when the buffers are empty.
        """
        if not self._entries:
            return None
        self._sample_cursor = (self._sample_cursor + 1) % len(self._entries)
        entry = self._entries[self._sample_cursor]
        return entry.data[offset_in_line % len(entry.data)]

    def entries_from_thread(self, thread_id: int) -> int:
        """How many live entries belong to *thread_id* (for tests)."""
        return sum(1 for entry in self._entries if entry.thread_id == thread_id)

    def clear(self) -> None:
        """Drop all entries (e.g. on a buffer-overwriting mitigation)."""
        self._entries.clear()
        self._sample_cursor = 0

    def __len__(self) -> int:
        return len(self._entries)
