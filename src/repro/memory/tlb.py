"""Set-associative translation lookaside buffers.

The heart of TET-KASLR: on the vulnerable Intel parts the paper tests,
*faulting* accesses to mapped supervisor pages still allocate a TLB entry
("Intel's CPUs will trigger the loading of TLB entries for mapped
addresses, even for illegal access without permission", §4.5).  Unmapped
addresses can never be cached, so repeated probes keep paying full page
walks.  The :class:`Tlb` here supports exactly that asymmetry, plus the
flush/evict operations the attacker uses between probes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.memory.paging import PageSize, Pte


@dataclass(frozen=True)
class TlbEntry:
    """A cached translation."""

    vpn: int
    pte: Pte
    page_size: PageSize


class Tlb:
    """One set-associative TLB array for a single page size."""

    def __init__(self, name: str, entries: int, ways: int, page_size: PageSize) -> None:
        self.name = name
        self.page_size = page_size
        self.ways = ways
        self.sets = max(1, entries // ways)
        self._sets: Dict[int, OrderedDict] = {}
        self.hits = 0
        self.misses = 0
        #: Page size in bytes, pre-converted (enum coercion off the hot path).
        self._page_bytes = int(page_size)

    def _vpn(self, va: int) -> int:
        return va // self._page_bytes

    def _set_index(self, vpn: int) -> int:
        return vpn % self.sets

    def lookup(self, va: int) -> Optional[TlbEntry]:
        """Return the entry translating *va*, refreshing LRU, or ``None``."""
        vpn = va // self._page_bytes
        ways = self._sets.get(vpn % self.sets)
        if ways is not None and vpn in ways:
            ways.move_to_end(vpn)
            self.hits += 1
            return ways[vpn]
        self.misses += 1
        return None

    def fill(self, va: int, pte: Pte) -> None:
        """Install the translation for *va* (evicting LRU if needed)."""
        vpn = va // self._page_bytes
        ways = self._sets.setdefault(vpn % self.sets, OrderedDict())
        if vpn in ways:
            ways.move_to_end(vpn)
            ways[vpn] = TlbEntry(vpn, pte, self.page_size)
            return
        if len(ways) >= self.ways:
            ways.popitem(last=False)
        ways[vpn] = TlbEntry(vpn, pte, self.page_size)

    def invalidate(self, va: int) -> bool:
        """Drop the entry covering *va* (``invlpg``); return if present."""
        vpn = self._vpn(va)
        ways = self._sets.get(self._set_index(vpn))
        if ways is not None and vpn in ways:
            del ways[vpn]
            return True
        return False

    def flush(self, keep_global: bool = False) -> None:
        """Flush the TLB; optionally keep global entries (CR3 reload)."""
        if not keep_global:
            self._sets.clear()
            return
        for set_index in list(self._sets):
            ways = self._sets[set_index]
            survivors = OrderedDict(
                (vpn, entry) for vpn, entry in ways.items() if entry.pte.global_
            )
            if survivors:
                self._sets[set_index] = survivors
            else:
                del self._sets[set_index]

    @property
    def resident_entries(self) -> int:
        return sum(len(ways) for ways in self._sets.values())


class SplitTlb:
    """A 4 KiB array plus a 2 MiB array, as on real Intel D-side TLBs."""

    def __init__(
        self,
        name: str,
        entries_4k: int = 64,
        ways_4k: int = 4,
        entries_2m: int = 32,
        ways_2m: int = 4,
    ) -> None:
        self.name = name
        self.tlb_4k = Tlb(f"{name}-4K", entries_4k, ways_4k, PageSize.SIZE_4K)
        self.tlb_2m = Tlb(f"{name}-2M", entries_2m, ways_2m, PageSize.SIZE_2M)

    def _array_for(self, size: PageSize) -> Tlb:
        return self.tlb_4k if size == PageSize.SIZE_4K else self.tlb_2m

    def lookup(self, va: int) -> Optional[TlbEntry]:
        """Probe both arrays (2 MiB first, as the bigger pages win)."""
        entry = self.tlb_2m.lookup(va)
        if entry is not None:
            return entry
        return self.tlb_4k.lookup(va)

    def fill(self, va: int, pte: Pte) -> None:
        """Install *pte* into the array matching its page size."""
        self._array_for(pte.page_size).fill(va, pte)

    def invalidate(self, va: int) -> None:
        """Drop any entry covering *va* from both arrays."""
        self.tlb_2m.invalidate(va)
        self.tlb_4k.invalidate(va)

    def flush(self, keep_global: bool = False) -> None:
        """Flush both arrays."""
        self.tlb_2m.flush(keep_global=keep_global)
        self.tlb_4k.flush(keep_global=keep_global)

    @property
    def hits(self) -> int:
        return self.tlb_2m.hits + self.tlb_4k.hits

    @property
    def misses(self) -> int:
        # A miss in the split TLB shows as a miss in both arrays; count the
        # 4K array only so one logical lookup is one logical miss.
        return self.tlb_4k.misses

    @property
    def resident_entries(self) -> int:
        return self.tlb_2m.resident_entries + self.tlb_4k.resident_entries
