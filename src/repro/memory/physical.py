"""Sparse byte-addressable physical memory."""

from __future__ import annotations

from typing import Dict

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class PhysicalMemory:
    """Physical memory backed by lazily-allocated 4 KiB frames.

    The simulator's address space is huge (the kernel image lives near the
    top of the canonical range), so frames are allocated on first touch.
    Reads from never-written frames return zeros, like fresh RAM after the
    kernel scrubs it.
    """

    def __init__(self) -> None:
        self._frames: Dict[int, bytearray] = {}

    def _frame(self, paddr: int) -> bytearray:
        frame_number = paddr >> PAGE_SHIFT
        frame = self._frames.get(frame_number)
        if frame is None:
            frame = bytearray(PAGE_SIZE)
            self._frames[frame_number] = frame
        return frame

    def read_bytes(self, paddr: int, length: int) -> bytes:
        """Read *length* bytes starting at physical address *paddr*."""
        out = bytearray()
        while length > 0:
            frame = self._frame(paddr)
            offset = paddr & PAGE_MASK
            chunk = min(length, PAGE_SIZE - offset)
            out += frame[offset : offset + chunk]
            paddr += chunk
            length -= chunk
        return bytes(out)

    def write_bytes(self, paddr: int, data: bytes) -> None:
        """Write *data* starting at physical address *paddr*."""
        position = 0
        while position < len(data):
            frame = self._frame(paddr)
            offset = paddr & PAGE_MASK
            chunk = min(len(data) - position, PAGE_SIZE - offset)
            frame[offset : offset + chunk] = data[position : position + chunk]
            paddr += chunk
            position += chunk

    def read_u64(self, paddr: int) -> int:
        """Read a little-endian 64-bit value at *paddr*."""
        return int.from_bytes(self.read_bytes(paddr, 8), "little")

    def write_u64(self, paddr: int, value: int) -> None:
        """Write a little-endian 64-bit value at *paddr*."""
        self.write_bytes(paddr, (value & ((1 << 64) - 1)).to_bytes(8, "little"))

    def read_u8(self, paddr: int) -> int:
        """Read one byte at *paddr*."""
        return self.read_bytes(paddr, 1)[0]

    def write_u8(self, paddr: int, value: int) -> None:
        """Write one byte at *paddr*."""
        self.write_bytes(paddr, bytes([value & 0xFF]))

    @property
    def allocated_frames(self) -> int:
        """Number of frames that have been touched (for tests/inspection)."""
        return len(self._frames)
