"""The MMU facade the core talks to: TLBs + walker + caches + physical RAM.

This is where the paper's TET-KASLR root cause is implemented as policy:

* mapped-but-forbidden access -> permission fault, and on parts with
  ``fill_tlb_on_faulting_access`` the translation is *still cached*, so the
  next probe of the same address skips the walk entirely;
* unmapped access -> not-present fault that can never be cached, so every
  probe pays the full walk (plus the walker's not-present confirmation).

The MMU is deliberately policy-free about *transient data forwarding*
(Meltdown/MDS): it reports what happened and exposes peeks; the core
decides what a vulnerable pipeline forwards.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Optional

from repro.memory.cache import CacheHierarchy, LINE_SIZE
from repro.memory.lfb import LineFillBuffer
from repro.memory.paging import AddressSpace, Pte
from repro.memory.physical import PhysicalMemory
from repro.memory.tlb import SplitTlb
from repro.memory.walker import PageWalker, WalkResult


class FaultKind(enum.Enum):
    """Why a memory access faulted."""

    NOT_PRESENT = "not_present"  # #PF, P=0 -- the address is unmapped
    PROTECTION = "protection"  # #PF, U/S violation -- mapped, supervisor-only
    WRITE_PROTECT = "write_protect"  # #PF, W=0 on a write
    NX = "nx"  # instruction fetch from NX page


@dataclass(frozen=True)
class Fault:
    """A page fault with the detail the kernel (and the attacker) can see."""

    kind: FaultKind
    va: int

    @property
    def address_is_mapped(self) -> bool:
        """Whether a translation exists (the secret TET-KASLR extracts)."""
        return self.kind is not FaultKind.NOT_PRESENT


@dataclass(frozen=True)
class TranslationEvent:
    """One data-side MMU translation, in consumption (dispatch) order.

    The translation sibling of ``ResolutionEvent``: while the core
    records a trace it arms ``Mmu.translation_log``, and the MMU appends
    one of these per ``data_access``/``prefetch`` call.  The batch
    executor's page-table-aware shadow replays a follower lane's
    translation against the leader's breadcrumb to prove (or refuse to
    prove) that the lane's translation timeline is cycle-isomorphic.

    ``steps`` carries the page walk actually performed -- one
    ``(level, entry_paddr, present, is_leaf, psc_hit, hit_level)`` tuple
    per visited level (``hit_level`` ``None`` on a PSC hit), empty on a
    TLB hit -- and ``pte`` the leaf disposition snapshot
    ``(pfn, present, writable, user, global_, nx, page_size)``
    (``None`` for a hole).
    """

    side: str  # "d" | "prefetch"
    va: int
    write: bool
    tlb_hit: bool
    tlb_filled: bool
    latency: int
    queue_delay: int
    fault_kind: Optional[str]  # FaultKind.value, or None
    was_cached: bool
    pte: Optional[tuple]
    steps: tuple


def pte_snapshot(pte: Optional[Pte]) -> Optional[tuple]:
    """The disposition tuple a :class:`TranslationEvent` records."""
    if pte is None:
        return None
    return (
        pte.pfn,
        pte.present,
        pte.writable,
        pte.user,
        pte.global_,
        pte.nx,
        pte.page_size,
    )


class AccessResult:
    """Everything one data access produced.

    A ``__slots__`` class rather than a dataclass: one is allocated per
    data access, squarely on the simulator's hot path.
    """

    __slots__ = (
        "va",
        "paddr",
        "value",
        "fault",
        "latency",
        "tlb_hit",
        "hit_level",
        "was_cached",
        "walk",
    )

    def __init__(
        self,
        va: int,
        paddr: Optional[int],
        value: Optional[int],
        fault: Optional[Fault],
        latency: int,
        tlb_hit: bool,
        hit_level: str,
        was_cached: bool,
        walk: Optional[WalkResult] = None,
    ) -> None:
        self.va = va
        self.paddr = paddr
        self.value = value
        self.fault = fault
        self.latency = latency
        self.tlb_hit = tlb_hit
        self.hit_level = hit_level  # cache level that served the data ("" if faulted)
        self.was_cached = was_cached  # line presence *before* this access
        self.walk = walk

    @property
    def ok(self) -> bool:
        return self.fault is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AccessResult(va={self.va:#x}, paddr={self.paddr}, fault={self.fault}, "
            f"latency={self.latency}, tlb_hit={self.tlb_hit}, hit_level={self.hit_level!r})"
        )


class FetchResult:
    """Outcome of one instruction-fetch translation + line access."""

    __slots__ = ("va", "fault", "latency", "tlb_hit", "walk")

    def __init__(
        self,
        va: int,
        fault: Optional[Fault],
        latency: int,
        tlb_hit: bool,
        walk: Optional[WalkResult] = None,
    ) -> None:
        self.va = va
        self.fault = fault
        self.latency = latency
        self.tlb_hit = tlb_hit
        self.walk = walk

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FetchResult(va={self.va:#x}, fault={self.fault}, "
            f"latency={self.latency}, tlb_hit={self.tlb_hit})"
        )


class Mmu:
    """Memory-management unit for one core (shared by SMT siblings)."""

    def __init__(
        self,
        physical: PhysicalMemory,
        hierarchy: CacheHierarchy,
        fill_tlb_on_faulting_access: bool = True,
        dtlb: Optional[SplitTlb] = None,
        itlb: Optional[SplitTlb] = None,
        lfb: Optional[LineFillBuffer] = None,
        fault_determination_cost: int = 4,
    ) -> None:
        self.physical = physical
        self.hierarchy = hierarchy
        self.fill_tlb_on_faulting_access = fill_tlb_on_faulting_access
        self.dtlb = dtlb or SplitTlb("DTLB")
        self.itlb = itlb or SplitTlb("ITLB", entries_4k=64, ways_4k=8)
        self.walker = PageWalker(hierarchy)
        # `is not None`, not truthiness: an empty shared LineFillBuffer is
        # falsy (it defines __len__) but must still be shared.
        self.lfb = lfb if lfb is not None else LineFillBuffer()
        self.fault_determination_cost = fault_determination_cost
        self.space: Optional[AddressSpace] = None
        #: Armed (to a list) by ``Core.run`` while recording a trace:
        #: each data-side translation appends a :class:`TranslationEvent`
        #: breadcrumb for the batch executor's page-table shadow.  ``None``
        #: (the default) keeps the hot path to a single attribute test.
        self.translation_log: Optional[list] = None
        # Optional ambient-noise model: a seeded jitter added to every
        # memory-side latency, standing in for co-running OS activity.
        # Deterministic given the seed, so noisy runs still replay.
        self._noise_rng: Optional[random.Random] = None
        self._noise_amplitude = 0
        # Walk-cycle accounting split by requester, feeding Table 3's
        # DTLB_LOAD_MISSES.* / ITLB_MISSES.WALK_ACTIVE counters.
        self.dside_walks = 0
        self.dside_walk_cycles = 0
        self.iside_walks = 0
        self.iside_walk_cycles = 0

    def set_noise(self, amplitude: int, seed: int = 0) -> None:
        """Enable ambient latency noise: each memory-side access gains a
        uniform 0..*amplitude* cycle jitter.  ``amplitude=0`` disables."""
        if amplitude < 0:
            raise ValueError("noise amplitude must be >= 0")
        self._noise_amplitude = amplitude
        self._noise_rng = random.Random(seed) if amplitude else None

    def _jitter(self) -> int:
        if self._noise_rng is None:
            return 0
        return self._noise_rng.randint(0, self._noise_amplitude)

    def set_address_space(self, space: AddressSpace, flush_global: bool = False) -> None:
        """CR3 write: switch tables, flushing non-global TLB entries."""
        self.space = space
        self.dtlb.flush(keep_global=not flush_global)
        self.itlb.flush(keep_global=not flush_global)
        self.walker.flush_psc()

    def flush_tlb(self, keep_global: bool = False) -> None:
        """Full TLB + paging-structure-cache flush (attacker primitive)."""
        self.dtlb.flush(keep_global=keep_global)
        self.itlb.flush(keep_global=keep_global)
        self.walker.flush_psc()

    def invalidate_page(self, va: int) -> None:
        """``invlpg``-style single-address invalidation."""
        self.dtlb.invalidate(va)
        self.itlb.invalidate(va)

    def reset_uarch(self, noise_seed: Optional[int] = None) -> None:
        """Restore the memory side to a just-booted profile.

        Flushes the whole cache hierarchy, both TLBs (global entries
        included), the paging-structure cache and the line fill buffers,
        and zeroes the walk/hit/miss accounting.  Architectural state
        (page tables, physical memory contents) is untouched -- that is
        the point: a pooled worker reuses one machine across trials
        without rebuilding the kernel.  *noise_seed* reseeds the ambient
        noise stream so each trial's jitter is a deterministic function
        of the trial, not of whatever ran before it on this machine.
        """
        self.hierarchy.flush_all()
        for cache in (
            self.hierarchy.l1d,
            self.hierarchy.l1i,
            self.hierarchy.l2,
            self.hierarchy.llc,
        ):
            cache.hits = 0
            cache.misses = 0
        self.hierarchy.clflush_count = 0
        self.flush_tlb(keep_global=False)
        for tlb in (self.dtlb, self.itlb):
            for array in (tlb.tlb_4k, tlb.tlb_2m):
                array.hits = 0
                array.misses = 0
        self.lfb.clear()
        # The walker's busy-until stamp is an absolute cycle number; left
        # alone it would charge the first post-reset walk a phantom queue
        # delay equal to the previous trial's entire runtime.
        self.walker.busy_until = 0
        self.walker.walks = 0
        self.walker.walk_cycles = 0
        self.dside_walks = 0
        self.dside_walk_cycles = 0
        self.iside_walks = 0
        self.iside_walk_cycles = 0
        if self._noise_amplitude and noise_seed is not None:
            self.set_noise(self._noise_amplitude, seed=noise_seed)

    # -- translation breadcrumbs ---------------------------------------------

    def _log_translation(
        self,
        side: str,
        va: int,
        write: bool,
        tlb_hit: bool,
        tlb_filled: bool,
        latency: int,
        walk: Optional[WalkResult],
        fault: Optional[Fault],
        was_cached: bool,
        pte: Optional[Pte],
    ) -> None:
        """Append one :class:`TranslationEvent` (call only while armed)."""
        self.translation_log.append(
            TranslationEvent(
                side=side,
                va=va,
                write=write,
                tlb_hit=tlb_hit,
                tlb_filled=tlb_filled,
                latency=latency,
                queue_delay=walk.queue_delay if walk is not None else 0,
                fault_kind=fault.kind.value if fault is not None else None,
                was_cached=was_cached,
                pte=pte_snapshot(pte),
                steps=(walk.step_details or ()) if walk is not None else (),
            )
        )

    # -- permission checking -------------------------------------------------

    @staticmethod
    def _check_permissions(pte: Pte, write: bool, user: bool, fetch: bool, va: int) -> Optional[Fault]:
        if user and not pte.user:
            return Fault(FaultKind.PROTECTION, va)
        if write and not pte.writable:
            return Fault(FaultKind.WRITE_PROTECT, va)
        if fetch and pte.nx:
            return Fault(FaultKind.NX, va)
        return None

    # -- data side -----------------------------------------------------------

    def data_access(
        self,
        va: int,
        write: bool = False,
        value: Optional[int] = None,
        size: int = 8,
        user: bool = True,
        now: int = 0,
        thread_id: int = 0,
    ) -> AccessResult:
        """Perform one data load or store at *va*.

        On success the value is read from / written to physical memory and
        the cache hierarchy is updated (fills recorded into the LFB).  On a
        fault nothing architectural happens; the result captures the fault
        kind, the translation latency actually spent, and (via ``paddr``)
        where the data would have been -- the core uses that for transient
        forwarding decisions.
        """
        if self.space is None:
            raise RuntimeError("MMU has no address space installed")

        walk = None
        tlb_filled = False
        rng = self._noise_rng
        entry = self.dtlb.lookup(va)
        if entry is not None:
            pte = entry.pte
            latency = 1 if rng is None else 1 + rng.randint(0, self._noise_amplitude)
            tlb_hit = True
        else:
            walk = self.walker.walk(self.space, va, now=now)
            self.dside_walks += 1
            self.dside_walk_cycles += walk.latency
            latency = walk.latency
            if rng is not None:
                latency += rng.randint(0, self._noise_amplitude)
            tlb_hit = False
            if walk.pte is None:
                latency += self.fault_determination_cost
                fault = Fault(FaultKind.NOT_PRESENT, va)
                if self.translation_log is not None:
                    self._log_translation(
                        "d", va, write, False, False, latency, walk,
                        fault, False, None,
                    )
                return AccessResult(
                    va=va,
                    paddr=None,
                    value=None,
                    fault=fault,
                    latency=latency,
                    tlb_hit=False,
                    hit_level="",
                    was_cached=False,
                    walk=walk,
                )
            pte = walk.pte
            fault_preview = self._check_permissions(pte, write, user, False, va)
            if fault_preview is None or self.fill_tlb_on_faulting_access:
                self.dtlb.fill(va, pte)
                tlb_filled = True

        paddr = pte.physical_address(va)
        # _check_permissions, inlined (data side is the hot path).
        if user and not pte.user:
            fault = Fault(FaultKind.PROTECTION, va)
        elif write and not pte.writable:
            fault = Fault(FaultKind.WRITE_PROTECT, va)
        else:
            fault = None
        if fault is not None:
            latency += self.fault_determination_cost
            was_cached = self.hierarchy.data_resident(paddr)
            if self.translation_log is not None:
                self._log_translation(
                    "d", va, write, tlb_hit, tlb_filled, latency, walk,
                    fault, was_cached, pte,
                )
            return AccessResult(
                va=va,
                paddr=paddr,
                value=None,
                fault=fault,
                latency=latency,
                tlb_hit=tlb_hit,
                hit_level="",
                was_cached=was_cached,
                walk=walk,
            )

        was_cached = self.hierarchy.data_resident(paddr)
        outcome = self.hierarchy.data_access(paddr)
        latency += outcome.latency
        if outcome.hit_level != "L1":
            # The fill buffers sit between L1D and the rest of the
            # hierarchy: every L1 miss is serviced through one.
            line_paddr = paddr & ~(LINE_SIZE - 1)
            self.lfb.record_fill(
                line_paddr, self.physical.read_bytes(line_paddr, LINE_SIZE), thread_id
            )
        if write:
            if value is None:
                raise ValueError("store needs a value")
            self.physical.write_bytes(paddr, value.to_bytes(size, "little", signed=False))
            line_paddr = paddr & ~(LINE_SIZE - 1)
            self.lfb.record_fill(
                line_paddr, self.physical.read_bytes(line_paddr, LINE_SIZE), thread_id
            )
            data = value
        else:
            data = int.from_bytes(self.physical.read_bytes(paddr, size), "little")
        if self.translation_log is not None:
            self._log_translation(
                "d", va, write, tlb_hit, tlb_filled, latency, walk,
                None, was_cached, pte,
            )
        return AccessResult(
            va=va,
            paddr=paddr,
            value=data,
            fault=None,
            latency=latency,
            tlb_hit=tlb_hit,
            hit_level=outcome.hit_level,
            was_cached=was_cached,
            walk=walk,
        )

    def prefetch(self, va: int, user: bool = True, now: int = 0, thread_id: int = 0) -> int:
        """Software prefetch: translate and fill, never fault.

        Returns the latency.  This is EntryBleed's primitive: on parts
        that load translations regardless of the permission outcome, a
        user-mode prefetch of a *mapped kernel* address still fills the
        TLB (and its latency reveals the translation state); on
        permission-checked parts it does not.
        """
        if self.space is None:
            raise RuntimeError("MMU has no address space installed")
        walk = None
        tlb_filled = False
        tlb_hit = False
        entry = self.dtlb.lookup(va)
        if entry is not None:
            pte = entry.pte
            latency = 1
            tlb_hit = True
        else:
            walk = self.walker.walk(self.space, va, now=now)
            self.dside_walks += 1
            self.dside_walk_cycles += walk.latency
            latency = walk.latency
            if walk.pte is None:
                if self.translation_log is not None:
                    self._log_translation(
                        "prefetch", va, False, False, False, latency, walk,
                        None, False, None,
                    )
                return latency  # unmapped: nothing to fill, nothing fetched
            pte = walk.pte
            permitted = self._check_permissions(pte, False, user, False, va) is None
            if permitted or self.fill_tlb_on_faulting_access:
                self.dtlb.fill(va, pte)
                tlb_filled = True
        if self._check_permissions(pte, False, user, False, va) is None:
            outcome = self.hierarchy.data_access(pte.physical_address(va))
            latency += outcome.latency
        if self.translation_log is not None:
            self._log_translation(
                "prefetch", va, False, tlb_hit, tlb_filled, latency, walk,
                None, False, pte,
            )
        return latency

    # -- instruction side ----------------------------------------------------

    def instruction_fetch(self, va: int, user: bool = True, now: int = 0) -> FetchResult:
        """Translate and fetch the instruction line at *va*."""
        if self.space is None:
            raise RuntimeError("MMU has no address space installed")
        walk = None
        rng = self._noise_rng
        entry = self.itlb.lookup(va)
        if entry is not None:
            pte = entry.pte
            latency = 1 if rng is None else 1 + rng.randint(0, self._noise_amplitude)
            tlb_hit = True
        else:
            walk = self.walker.walk(self.space, va, now=now)
            self.iside_walks += 1
            self.iside_walk_cycles += walk.latency
            latency = walk.latency
            tlb_hit = False
            if walk.pte is None:
                return FetchResult(va, Fault(FaultKind.NOT_PRESENT, va), latency, False, walk)
            pte = walk.pte
            self.itlb.fill(va, pte)
        # _check_permissions, inlined (instruction fetches dominate).
        if user and not pte.user:
            fault = Fault(FaultKind.PROTECTION, va)
        elif pte.nx:
            fault = Fault(FaultKind.NX, va)
        else:
            fault = None
        if fault is not None:
            return FetchResult(va, fault, latency + self.fault_determination_cost, tlb_hit, walk)
        outcome = self.hierarchy.inst_access(pte.physical_address(va))
        return FetchResult(va, None, latency + outcome.latency, tlb_hit, walk)

    # -- attacker-visible helpers ---------------------------------------------

    def clflush(self, va: int, user: bool = True) -> bool:
        """Flush the line at *va* from the whole hierarchy.

        Returns ``False`` (no-op) when the address does not translate --
        ``clflush`` on a bad address raises #PF on real hardware, but the
        gadgets only flush their own memory, so a boolean is sufficient.
        """
        pte = self.space.lookup(va) if self.space else None
        if pte is None:
            return False
        self.hierarchy.clflush(pte.physical_address(va))
        return True

    def translate_peek(self, va: int) -> Optional[int]:
        """Translate *va* with no side effects; ``None`` if unmapped."""
        pte = self.space.lookup(va) if self.space else None
        if pte is None:
            return None
        return pte.physical_address(va)

    def peek_raw_bytes(self, va: int, size: int) -> Optional[bytes]:
        """Read *size* bytes at *va* with no side effects (undo logging)."""
        paddr = self.translate_peek(va)
        if paddr is None:
            return None
        return self.physical.read_bytes(paddr, size)

    def poke_raw_bytes(self, va: int, data: bytes) -> None:
        """Write bytes at *va* with no side effects (store rollback)."""
        paddr = self.translate_peek(va)
        if paddr is None:
            raise ValueError(f"poke of unmapped address {va:#x}")
        self.physical.write_bytes(paddr, data)

    def peek_physical(self, va: int) -> Optional[int]:
        """Read the byte at *va*'s translation ignoring permissions.

        This is the *simulator-internal* peek the core uses to model
        Meltdown's transient forwarding; it never touches the caches.
        """
        pte = self.space.lookup(va) if self.space else None
        if pte is None:
            return None
        return self.physical.read_u8(pte.physical_address(va))

    def is_cached(self, va: int) -> bool:
        """Whether *va*'s line is anywhere in the data hierarchy."""
        pte = self.space.lookup(va) if self.space else None
        if pte is None:
            return False
        return self.hierarchy.data_resident(pte.physical_address(va))
