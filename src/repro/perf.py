"""The ``repro perf`` harness: profile and benchmark the trial hot path.

Two entry points, both driven from the CLI (``repro perf profile`` /
``repro perf bench``) and both aimed at the same question -- *how fast is
one simulated trial, and where does its time go?*

``profile``
    Wraps a slice of a built-in campaign cell's trials in ``cProfile``
    and prints the hottest functions.  This is the tool that found the
    hot spots the decode cache, the COW snapshots and the PMU fast paths
    now cover; keeping it a one-liner keeps them found.

``bench``
    Measures trial throughput (trials/second) on a built-in campaign
    cell with a best-of-N methodology, normalises it against a
    pure-Python calibration loop so scores compare across hosts, and
    gates against a committed baseline (:data:`DEFAULT_BASELINE_PATH`):
    a normalised score below ``0.7 x`` baseline exits non-zero, which is
    how CI catches a >30% hot-path regression before it merges.  Metrics
    merge into ``benchmarks/reports/reproduction_report.json`` next to
    the paper-reproduction figures.

Throughput is measured best-of-N rather than averaged because a shared
CI host's noise is one-sided: interference can only make a pass slower,
never faster, so the fastest repetition is the closest observation of
the code's true cost.
"""

from __future__ import annotations

import cProfile
import io
import json
import os
import pstats
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = [
    "BenchResult",
    "DEFAULT_BASELINE_PATH",
    "DISABLED_OVERHEAD_CEILING",
    "ENABLED_OVERHEAD_CEILING",
    "REGRESSION_FLOOR",
    "STREAMING_OVERHEAD_CEILING",
    "bench_cell",
    "calibrate_host",
    "cell_payloads",
    "load_baseline",
    "merge_report_metrics",
    "profile_cell",
    "run_bench",
    "run_overhead",
    "run_profile",
    "telemetry_probe",
]

#: The committed throughput baseline the regression gate compares against.
DEFAULT_BASELINE_PATH = os.path.join("benchmarks", "perf_baseline.json")

#: Where bench metrics merge into the reproduction artefact set.
DEFAULT_REPORT_PATH = os.path.join(
    "benchmarks", "reports", "reproduction_report.json"
)

#: ``bench`` fails when the normalised score drops below this fraction of
#: the committed baseline (0.7 = a >30% regression).
REGRESSION_FLOOR = 0.7

#: Default (campaign, cell): the e3 environment-matrix channel cell on the
#: i7-7700 -- the workload the hot-path acceptance target is defined on.
DEFAULT_CAMPAIGN = "e3-matrix"
DEFAULT_CELL = 0

#: Telemetry overhead gates (``repro obs overhead`` / CI obs-smoke):
#: the disabled path must cost under 2% of trial time, the fully
#: enabled path under 15%, and the streaming path (telemetry armed
#: *plus* live spool appends at the default cadence) under 15% too.
DISABLED_OVERHEAD_CEILING = 0.02
ENABLED_OVERHEAD_CEILING = 0.15
STREAMING_OVERHEAD_CEILING = 0.15


def cell_payloads(campaign: str, cell: int, limit: Optional[int] = None) -> List:
    """The trial payloads of one cell of a built-in campaign, in
    expansion order (optionally the first *limit* of them)."""
    from repro.campaign.builtin import builtin_campaign

    spec = builtin_campaign(campaign)
    if not 0 <= cell < len(spec.cells):
        raise ValueError(
            f"campaign {campaign!r} has cells 0..{len(spec.cells) - 1}, "
            f"not {cell}"
        )
    payloads = [ref.trial for ref in spec.expand() if ref.cell == cell]
    if limit is not None:
        payloads = payloads[:limit]
    return payloads


def _cell_kind(campaign: str, cell: int) -> str:
    """The trial kind one cell expands to (``channel``/``kaslr``/``detect``).

    Batched scores gate per kind: a KASLR sweep's pack economics (one
    faulting probe per lane, near-total shadow survival) are nothing
    like a channel scan's, so their baselines live in separate maps
    (``kaslr_batch_scores`` vs ``batch_scores``).
    """
    from repro.runtime.tasks import ChannelTrial, KaslrTrial

    first = cell_payloads(campaign, cell, limit=1)
    if first and isinstance(first[0], KaslrTrial):
        return "kaslr"
    if first and isinstance(first[0], ChannelTrial):
        return "channel"
    return "detect"


def calibrate_host(target_seconds: float = 0.05) -> float:
    """Millions of pure-Python loop operations per second on this host.

    The loop is fixed, allocation-free arithmetic, so its rate tracks the
    interpreter-plus-host speed the simulator itself is bound by.
    Dividing trials/second by this rate gives a score that survives
    moving the baseline between a laptop and a throttled CI runner.
    """
    rounds = 10_000
    best = float("inf")
    deadline = time.perf_counter() + target_seconds * 4
    while time.perf_counter() < deadline:
        start = time.perf_counter()
        total = 0
        for value in range(rounds):
            total += value * value - (value >> 1)
        elapsed = time.perf_counter() - start
        if 0 < elapsed < best:
            best = elapsed
    del total
    return rounds / best / 1e6


@dataclass
class BenchResult:
    """One ``bench`` measurement plus its baseline verdict."""

    campaign: str
    cell: int
    trials: int
    repeats: int
    trials_per_second: float
    calibration_mops: float
    #: trials/second per calibration Mop/s -- the cross-host score.
    normalized_score: float
    #: vs the baseline's recorded pre-overhaul reference (None = no ref).
    speedup_vs_reference: Optional[float]
    #: normalised score over the committed baseline's (None = no baseline).
    baseline_ratio: Optional[float]
    regressed: bool
    #: lockstep lanes per pack the timed loop ran with (1 = scalar).
    batch_size: int = 1
    #: The last timed repetition's :class:`~repro.runtime.batch.BatchStats`
    #: (warm leader cache steady state); None for scalar runs.
    batch_stats: Optional[object] = None

    def metrics(self) -> Dict[str, object]:
        """The JSON-serialisable metric map for the reproduction report."""
        out: Dict[str, object] = {
            "campaign": self.campaign,
            "cell": self.cell,
            "trials": self.trials,
            "repeats": self.repeats,
            "batch_size": self.batch_size,
            "trials_per_second": round(self.trials_per_second, 1),
            "calibration_mops": round(self.calibration_mops, 2),
            "normalized_score": round(self.normalized_score, 2),
            "regressed": self.regressed,
        }
        if self.speedup_vs_reference is not None:
            out["speedup_vs_reference"] = round(self.speedup_vs_reference, 2)
        if self.baseline_ratio is not None:
            out["baseline_ratio"] = round(self.baseline_ratio, 2)
        if self.batch_stats is not None:
            stats = self.batch_stats
            out["batch_packs"] = stats.packs
            out["batch_evicted_lanes"] = stats.evicted_lanes
            out["batch_evictions"] = dict(sorted(stats.evictions.items()))
            out["leader_cache_hits"] = stats.leader_cache_hits
            out["leader_cache_misses"] = stats.leader_cache_misses
        return out


def bench_cell(
    campaign: str = DEFAULT_CAMPAIGN,
    cell: int = DEFAULT_CELL,
    trials: int = 48,
    repeats: int = 5,
    batch: Optional[int] = None,
) -> Dict[str, object]:
    """Measure trial throughput on one campaign cell, best of *repeats*.

    Runs the cell's first *trials* payloads serially (the pool adds
    scheduling noise, and the hot path under test is the simulator, not
    the fan-out), after one untimed warm-up pass that builds the worker
    context and fills the decode/parse caches the way a long campaign
    would have.

    ``batch > 1`` times the lockstep batch executor instead
    (:func:`repro.runtime.batch.run_trials_batched` with *batch* lanes
    per pack) -- same payloads, byte-identical results, different
    engine.  The warm-up also goes through the batch path so the pack
    planner and shadow-replay code are as hot as the scalar caches.
    """
    from repro.runtime.batch import BatchStats, run_trials_batched
    from repro.runtime.tasks import run_trial

    payloads = cell_payloads(campaign, cell, limit=trials)
    if not payloads:
        raise ValueError(f"cell {cell} of {campaign!r} expands to no trials")
    batched = batch is not None and batch > 1
    if batched:
        run_trials_batched(payloads[: min(3, len(payloads))], batch)
    else:
        for payload in payloads[: min(3, len(payloads))]:
            run_trial(payload)  # warm-up: contexts, caches, code paths
    best = float("inf")
    stats = None
    for _ in range(repeats):
        start = time.perf_counter()
        if batched:
            # Fresh stats each repetition; the last one is the warm
            # leader-cache steady state a long campaign would see.
            stats = BatchStats()
            run_trials_batched(payloads, batch, stats)
        else:
            for payload in payloads:
                run_trial(payload)
        elapsed = time.perf_counter() - start
        if 0 < elapsed < best:
            best = elapsed
    return {
        "trials": len(payloads),
        "trials_per_second": len(payloads) / best,
        "batch_stats": stats,
    }


def load_baseline(path: str) -> Optional[Dict]:
    if not os.path.exists(path):
        return None
    with open(path) as handle:
        return json.load(handle)


def _write_json(path: str, payload: Dict) -> None:
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def merge_report_metrics(path: str, section: str, metrics: Dict) -> None:
    """Merge *metrics* into the ``{section: {metric: value}}`` report map
    the benchmark harness also writes, preserving other sections."""
    from repro.campaign.report import REPORT_SCHEMA_VERSION

    report: Dict = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                report = json.load(handle)
        except (OSError, ValueError):
            report = {}
        if report.get("schema_version") != REPORT_SCHEMA_VERSION:
            # Never merge sections produced under a different schema --
            # a mixed-version report would be unreadable by either
            # schema's consumers.  Stale sections are dropped; the next
            # full bench run regenerates them under the current version.
            report = {}
    report["schema_version"] = REPORT_SCHEMA_VERSION
    report.setdefault(section, {}).update(metrics)
    _write_json(path, report)


def run_bench(
    campaign: str = DEFAULT_CAMPAIGN,
    cell: int = DEFAULT_CELL,
    trials: int = 48,
    repeats: int = 5,
    quick: bool = False,
    baseline_path: str = DEFAULT_BASELINE_PATH,
    report_path: Optional[str] = DEFAULT_REPORT_PATH,
    update_baseline: bool = False,
    batch: Optional[int] = None,
    out=print,
) -> BenchResult:
    """The ``repro perf bench`` body; returns the measurement.

    ``quick`` shrinks the workload for CI smoke use (fewer trials and
    repetitions); the regression gate applies either way.  With
    ``update_baseline`` the measurement is recorded as the new committed
    baseline instead of being judged against it (any existing
    pre-overhaul reference score is carried forward).

    ``batch > 1`` benches the lockstep batch executor.  Batched scores
    gate against the baseline's ``batch_scores[str(batch)]`` entry (the
    scalar ``normalized_score`` stays the scalar path's gate), and
    ``update_baseline`` writes into that map without disturbing the
    scalar record.  KASLR cells gate against a separate
    ``kaslr_batch_scores`` map -- the translation-shadow pack runner and
    the channel pack runner have unrelated cost structures, so one map
    cannot gate both (see :func:`_cell_kind`).
    """
    if quick:
        trials = min(trials, 16)
        repeats = min(repeats, 3)
    lanes = batch if batch is not None and batch > 1 else 1
    measured = bench_cell(
        campaign, cell, trials=trials, repeats=repeats, batch=lanes
    )
    calibration = calibrate_host()
    rate = measured["trials_per_second"]
    score = rate / calibration

    baseline = load_baseline(baseline_path)
    batch_map = (
        "kaslr_batch_scores" if _cell_kind(campaign, cell) == "kaslr"
        else "batch_scores"
    )
    kaslr_gate = lanes > 1 and batch_map == "kaslr_batch_scores"
    reference_score = baseline.get("reference_normalized_score") if baseline else None
    baseline_score = baseline.get("normalized_score") if baseline else None
    if kaslr_gate:
        # The KASLR batch map carries its own identity fields -- the
        # record's top-level campaign/cell names the scalar (channel)
        # anchor cell, which a KASLR bench never matches.
        recorded = (
            (baseline or {}).get("kaslr_campaign"),
            (baseline or {}).get("kaslr_cell"),
        )
        reference_score = baseline_score = None
        if baseline is not None and recorded not in (
            (None, None), (campaign, cell)
        ):
            out(
                f"note: baseline records KASLR {recorded[0]}/cell"
                f"{recorded[1]}; gate skipped for {campaign}/cell{cell}"
            )
        else:
            baseline_score = (baseline or {}).get(batch_map, {}).get(str(lanes))
    elif baseline is not None and (
        baseline.get("campaign"), baseline.get("cell")
    ) != (campaign, cell):
        out(
            f"note: baseline records {baseline.get('campaign')}/cell"
            f"{baseline.get('cell')}; gate skipped for {campaign}/cell{cell}"
        )
        reference_score = baseline_score = None
        baseline = None
    elif lanes > 1:
        # A batched measurement must never be judged against the scalar
        # score (it would always "pass"); its gate is its own lane-count
        # entry, recorded the first time --update-baseline runs batched.
        baseline_score = (baseline or {}).get(batch_map, {}).get(str(lanes))

    speedup = score / reference_score if reference_score else None
    ratio = score / baseline_score if baseline_score else None
    regressed = ratio is not None and ratio < REGRESSION_FLOOR

    result = BenchResult(
        campaign=campaign,
        cell=cell,
        trials=int(measured["trials"]),
        repeats=repeats,
        trials_per_second=rate,
        calibration_mops=calibration,
        normalized_score=score,
        speedup_vs_reference=speedup,
        baseline_ratio=ratio,
        regressed=regressed,
        batch_size=lanes,
        batch_stats=measured.get("batch_stats"),
    )

    label = f" batch {lanes}" if lanes > 1 else ""
    out(f"perf bench: {campaign} cell {cell}{label} "
        f"({result.trials} trials, best of {repeats})")
    out(f"  trials/second    : {rate:8.1f}")
    out(f"  host calibration : {calibration:8.2f} Mop/s")
    out(f"  normalized score : {score:8.2f} trials/s per Mop/s")
    if speedup is not None:
        out(f"  vs pre-overhaul  : {speedup:8.2f}x")
    if ratio is not None:
        out(f"  vs baseline      : {ratio:8.2f}x "
            f"(floor {REGRESSION_FLOOR:.2f}x)")
    stats = result.batch_stats
    if stats is not None:
        evictions = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(stats.evictions.items())
        ) or "none"
        out(f"  pack evictions   : {stats.evicted_lanes:8d} ({evictions})")
        out(f"  leader cache     : {stats.leader_cache_hits} hits / "
            f"{stats.leader_cache_misses} misses")

    if update_baseline:
        record = dict(baseline) if baseline else {"campaign": campaign, "cell": cell}
        if lanes > 1:
            scores = dict(record.get(batch_map, {}))
            scores[str(lanes)] = round(score, 2)
            record[batch_map] = scores
            if kaslr_gate:
                record["kaslr_campaign"] = campaign
                record["kaslr_cell"] = cell
        else:
            record.update(
                {
                    "campaign": campaign,
                    "cell": cell,
                    "trials": result.trials,
                    "trials_per_second": round(rate, 1),
                    "calibration_mops": round(calibration, 2),
                    "normalized_score": round(score, 2),
                }
            )
            if reference_score is not None:
                record["reference_normalized_score"] = reference_score
        _write_json(baseline_path, record)
        out(f"  baseline updated : {baseline_path}")
    elif baseline is None:
        out(f"  no baseline at {baseline_path}; run with --update-baseline "
            f"to record one")
    elif lanes > 1 and baseline_score is None:
        out(f"  no {batch_map} batch-{lanes} entry in {baseline_path}; "
            f"run with --update-baseline to record one")

    # The telemetry probe runs outside every timed window: a short
    # observed pass whose metrics snapshot lands in the reproduction
    # report and whose cycle attribution names the hot paths when the
    # gate fails.
    snapshot, attribution = telemetry_probe(
        campaign, cell, trials=min(int(measured["trials"]), 8)
    )

    if report_path:
        merge_report_metrics(report_path, "perf_bench", result.metrics())
        merge_report_metrics(
            report_path,
            "telemetry",
            {
                "campaign": campaign,
                "cell": cell,
                "metrics": snapshot,
                "top_cycle_paths": [
                    {"path": path, "cycles": cycles, "spans": count}
                    for path, cycles, count in attribution[:5]
                ],
            },
        )
        out(f"  metrics merged   : {report_path}")

    if regressed:
        out(f"REGRESSION: normalized score {score:.2f} is below "
            f"{REGRESSION_FLOOR:.0%} of baseline {baseline_score:.2f}")
        out("  top cycle-attribution buckets (where the cycles went):")
        for path, cycles, count in attribution[:3]:
            out(f"    {cycles:>14,} cycles  {count:>5}x  {path}")
    return result


def telemetry_probe(
    campaign: str = DEFAULT_CAMPAIGN,
    cell: int = DEFAULT_CELL,
    trials: int = 8,
):
    """A short telemetry-armed pass over one cell.

    Returns ``(metrics_snapshot, cycle_attribution_rows)`` -- the stable
    content the bench merges into the reproduction report under its
    ``telemetry`` key, and the buckets the regression gate names on
    failure.  Runs outside every timed window and always disarms
    telemetry before returning.
    """
    from repro import telemetry
    from repro.runtime.tasks import run_trial
    from repro.telemetry.export import cycle_attribution

    payloads = cell_payloads(campaign, cell, limit=trials)
    telemetry.enable()
    try:
        for payload in payloads:
            run_trial(payload)
        records = telemetry.recorder().drain()
        snapshot = telemetry.metrics_registry().snapshot()
    finally:
        telemetry.disable()
    return snapshot, cycle_attribution(records)


def run_overhead(
    campaign: str = DEFAULT_CAMPAIGN,
    cell: int = DEFAULT_CELL,
    trials: int = 16,
    repeats: int = 3,
    quick: bool = False,
    report_path: Optional[str] = DEFAULT_REPORT_PATH,
    out=print,
) -> int:
    """The ``repro obs overhead`` body: gate telemetry's cost.

    Three measurements, three ceilings:

    * **disabled** -- the per-trial cost of the dormant hooks (one
      ``telemetry.enabled()`` check in ``run_trial`` plus the pool's
      per-map checks), measured directly with a micro-benchmark and
      expressed as a fraction of best-of-N trial time.  A/B timing of
      the same binary cannot isolate a sub-0.1% effect from host noise,
      so the hook cost is measured where it is visible and scaled.
      Ceiling: :data:`DISABLED_OVERHEAD_CEILING`.
    * **enabled** -- best-of-N A/B of the same trial slice with
      telemetry off vs fully armed (spans, counters, PMU reads, drains).
      Ceiling: :data:`ENABLED_OVERHEAD_CEILING`.
    * **streaming** -- telemetry armed *plus* a live
      :class:`~repro.telemetry.stream.StreamWriter` fed at the default
      cadence, spool appends and all -- the full ``--stream-out`` path.
      Ceiling: :data:`STREAMING_OVERHEAD_CEILING`.

    The streaming on/off ratio merges into the ``perf_bench`` section of
    the reproduction report so its trajectory is tracked across PRs.
    Returns 0 when all gates pass, 1 otherwise.
    """
    import shutil
    import tempfile

    from repro import telemetry
    from repro.runtime.tasks import run_trial
    from repro.telemetry.stream import StreamWriter

    if quick:
        trials = min(trials, 12)
        repeats = min(repeats, 3)
    payloads = cell_payloads(campaign, cell, limit=trials)
    if not payloads:
        raise ValueError(f"cell {cell} of {campaign!r} expands to no trials")
    for payload in payloads[: min(3, len(payloads))]:
        run_trial(payload)  # warm-up: contexts, caches, code paths

    def best_seconds(armed: bool) -> float:
        best = float("inf")
        for _ in range(repeats):
            if armed:
                telemetry.enable()
            start = time.perf_counter()
            for payload in payloads:
                run_trial(payload)
            elapsed = time.perf_counter() - start
            if armed:
                telemetry.recorder().drain()
                telemetry.metrics_registry().drain()
                telemetry.disable()
            if 0 < elapsed < best:
                best = elapsed
        return best

    def best_seconds_streaming() -> float:
        """The full live-plane arm: armed telemetry, spool appends at a
        cadence that flushes several times over the slice."""
        best = float("inf")
        every = max(1, len(payloads) // 4)
        total = len(payloads)
        for _ in range(repeats):
            spool_dir = tempfile.mkdtemp(prefix="repro-obs-stream-")
            try:
                telemetry.enable()
                writer = StreamWriter(
                    os.path.join(spool_dir, "stream.jsonl"),
                    shard="bench",
                    campaign=campaign,
                    total=total,
                    every=every,
                )
                start = time.perf_counter()
                done = 0
                for payload in payloads:
                    run_trial(payload)
                    done += 1
                    writer.on_batch(
                        {"done": done, "pending": total, "total": total}
                    )
                elapsed = time.perf_counter() - start
                writer.close(snapshot=telemetry.metrics_registry().drain())
                telemetry.recorder().drain()
                telemetry.disable()
            finally:
                shutil.rmtree(spool_dir, ignore_errors=True)
            if 0 < elapsed < best:
                best = elapsed
        return best

    # Interleave off/on/stream/off and keep the best disabled time, so
    # one-sided host interference cannot masquerade as telemetry overhead.
    off = best_seconds(False)
    on = best_seconds(True)
    streaming = best_seconds_streaming()
    off = min(off, best_seconds(False))
    per_trial = off / len(payloads)
    enabled_overhead = on / off - 1.0
    streaming_overhead = streaming / off - 1.0

    # The dormant hook, measured where it is visible: the exact check the
    # disabled run_trial performs, amortised over a large loop.
    telemetry.disable()
    hook_rounds = 100_000
    start = time.perf_counter()
    for _ in range(hook_rounds):
        telemetry.enabled()
    hook_seconds = (time.perf_counter() - start) / hook_rounds
    #: run_trial's check plus the pool/runner per-trial-amortised checks.
    hooks_per_trial = 4
    disabled_overhead = (hook_seconds * hooks_per_trial) / per_trial

    out(f"telemetry overhead: {campaign} cell {cell} "
        f"({len(payloads)} trials, best of {repeats})")
    out(f"  trial time (off)  : {per_trial * 1e3:8.3f} ms")
    out(f"  disabled overhead : {disabled_overhead:8.4%} "
        f"(ceiling {DISABLED_OVERHEAD_CEILING:.0%})")
    out(f"  enabled overhead  : {enabled_overhead:8.2%} "
        f"(ceiling {ENABLED_OVERHEAD_CEILING:.0%})")
    out(f"  streaming overhead: {streaming_overhead:8.2%} "
        f"(ceiling {STREAMING_OVERHEAD_CEILING:.0%}; "
        f"on/off ratio {streaming / off:.3f})")
    if report_path:
        merge_report_metrics(
            report_path,
            "perf_bench",
            {
                "streaming_overhead_ratio": round(streaming / off, 4),
                "telemetry_enabled_overhead": round(enabled_overhead, 4),
            },
        )
        out(f"  overhead merged   : {report_path}")
    failed = False
    if disabled_overhead >= DISABLED_OVERHEAD_CEILING:
        out("OVERHEAD: disabled-path telemetry cost exceeds its ceiling")
        failed = True
    if enabled_overhead >= ENABLED_OVERHEAD_CEILING:
        out("OVERHEAD: enabled-path telemetry cost exceeds its ceiling")
        failed = True
    if streaming_overhead >= STREAMING_OVERHEAD_CEILING:
        out("OVERHEAD: streaming-path telemetry cost exceeds its ceiling")
        failed = True
    return 1 if failed else 0


def profile_cell(
    campaign: str = DEFAULT_CAMPAIGN,
    cell: int = DEFAULT_CELL,
    trials: int = 24,
) -> cProfile.Profile:
    """cProfile one campaign cell's first *trials* trials (post warm-up)."""
    from repro.runtime.tasks import run_trial

    payloads = cell_payloads(campaign, cell, limit=trials)
    if not payloads:
        raise ValueError(f"cell {cell} of {campaign!r} expands to no trials")
    run_trial(payloads[0])  # warm-up outside the profile window
    profiler = cProfile.Profile()
    profiler.enable()
    for payload in payloads:
        run_trial(payload)
    profiler.disable()
    return profiler


def run_profile(
    campaign: str = DEFAULT_CAMPAIGN,
    cell: int = DEFAULT_CELL,
    trials: int = 24,
    sort: str = "tottime",
    limit: int = 25,
    out=print,
) -> None:
    """The ``repro perf profile`` body: print the hottest functions."""
    profiler = profile_cell(campaign, cell, trials=trials)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(limit)
    out(f"perf profile: {campaign} cell {cell} ({trials} trials, "
        f"sorted by {sort})")
    out(buffer.getvalue().rstrip())
