"""The TET side-channel attacks of §4: Meltdown, ZombieLoad, Spectre-RSB
and the KASLR break, each using Whisper as the covert channel instead of
Flush+Reload."""

from repro.whisper.attacks.kaslr import KaslrBreakResult, TetKaslr
from repro.whisper.attacks.meltdown import LeakResult, TetMeltdown
from repro.whisper.attacks.spectre_rsb import TetSpectreRsb
from repro.whisper.attacks.spectre_v1 import TetSpectreV1
from repro.whisper.attacks.zombieload import TetZombieload

__all__ = [
    "KaslrBreakResult",
    "LeakResult",
    "TetKaslr",
    "TetMeltdown",
    "TetSpectreRsb",
    "TetSpectreV1",
    "TetZombieload",
]
