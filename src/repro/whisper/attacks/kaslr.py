"""TET-KASLR (§4.5): breaking KASLR with the mapped-address ToTE oracle.

The primitive: flush the TLB, probe a candidate kernel address with a
faulting load twice, and time the second probe.  On the vulnerable Intel
parts, a *mapped* candidate's first faulting probe still loads a TLB
entry, so the second probe skips the page walk and the ToTE is short; an
*unmapped* candidate walks every time and stays slow (Table 3's
``DTLB_LOAD_MISSES.WALK_ACTIVE`` row).  On parts that check permissions
before filling the TLB (AMD Zen 3), both probes walk and the oracle is
blind -- Table 2's ✗.

Three scan strategies, matching the paper's three scenarios:

* plain KASLR: probe the 512 slot bases; the kernel image is the run of
  fast slots, its first slot the KASLR base;
* KPTI: probe ``slot + 0xe00000`` -- the single fast candidate is the
  KPTI trampoline remnant (the paper finds it "within 1s");
* KPTI+FLARE: every candidate is mapped (dummy pages), so insert a
  syscall round-trip between the TLB-filling probe and the timed probe.
  The trampoline's *global* entry survives the CR3 switches, the dummy
  entries do not -- the timed probe stays fast only at the real
  trampoline.  (The global/non-global asymmetry is our modelling of the
  paper's claim that TET's TLB behaviour defeats FLARE; see DESIGN.md.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.kernel.layout import (
    KASLR_SLOTS,
    KERNEL_TEXT_RANGE_START,
    KPTI_TRAMPOLINE_OFFSET,
    slot_base,
)
from repro.whisper.analysis import classify_bimodal
from repro.whisper.gadgets import GadgetBuilder, Suppression


@dataclass
class KaslrBreakResult:
    """Outcome of one KASLR break attempt."""

    found_base: Optional[int]
    true_base: int
    strategy: str
    probes: int
    cycles: int
    seconds: float
    threshold: float
    totes_by_slot: Dict[int, int] = field(default_factory=dict)
    mapped_slots: List[int] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return self.found_base == self.true_base

    def __str__(self) -> str:
        status = "BROKEN" if self.success else "failed"
        found = f"{self.found_base:#x}" if self.found_base is not None else "none"
        return (
            f"KASLR {status} via {self.strategy}: found {found} "
            f"(true {self.true_base:#x}) in {self.seconds:.6f} s simulated "
            f"({self.probes} probes)"
        )


class TetKaslr:
    """The TET-KASLR attack bound to one machine.

    ``eviction="direct"`` uses the harness's one-call TLB flush (cheap,
    the default); ``eviction="sets"`` evicts the TLBs the way a real
    unprivileged attacker must -- by walking an eviction working set --
    and pays its full simulated cost, which is where the paper's 0.88 s
    break time mostly goes.
    """

    def __init__(
        self,
        machine,
        suppression: Optional[Suppression] = None,
        eviction: str = "direct",
        pool=None,
    ) -> None:
        if eviction not in ("direct", "sets"):
            raise ValueError(f"eviction must be 'direct' or 'sets', not {eviction!r}")
        self.machine = machine
        self.eviction = eviction
        self.builder = GadgetBuilder(machine, suppression=suppression)
        self.program = self.builder.kaslr_probe()
        self.pool = pool
        self._trial_counter = 0
        self._spec = None

    # -- the probe primitive ------------------------------------------------------

    def _evict(self) -> None:
        if self.eviction == "sets":
            self.machine.evict_tlb_realistic()
        else:
            self.machine.flush_tlb()

    def probe_tote(self, va: int, cr3_switch: bool = False) -> int:
        """The timed double-probe of one candidate address.

        Returns the ToTE of the second (timed) probe.  ``cr3_switch``
        inserts the syscall round-trip of the FLARE bypass between the
        fill probe and the timed probe.
        """
        self._evict()
        self._run_probe(va)  # fills the TLB iff the address is mapped
        if cr3_switch:
            self.machine.syscall_roundtrip()
        result = self._run_probe(va)
        return result.regs.read("r15") - result.regs.read("r14")

    def _run_probe(self, va: int):
        # r9=256 can never match a forwarded byte, so the probe's Jcc
        # direction is constant and the classifier sees pure TLB timing.
        return self.machine.run(self.program, regs={"r13": va, "r9": 256})

    def detect_mapped(self, va: int, reference_unmapped: Optional[int] = None) -> bool:
        """The boolean oracle: is *va* mapped?

        Compares the candidate's double-probe ToTE against a known
        unmapped reference address (default: the top of the KASLR range,
        which no kernel maps)."""
        if reference_unmapped is None:
            reference_unmapped = KERNEL_TEXT_RANGE_START - 0x200000
        candidate = self.probe_tote(va)
        reference = self.probe_tote(reference_unmapped)
        return candidate + 4 < reference

    # -- full breaks ---------------------------------------------------------------

    def break_kaslr(self) -> KaslrBreakResult:
        """Scan the 512 slot bases (no KPTI): first fast slot = base."""
        return self._scan(offset=0, cr3_switch=False, strategy="slot-scan")

    def break_kaslr_kpti(self) -> KaslrBreakResult:
        """Scan the 512 candidate trampolines (KPTI enabled)."""
        return self._scan(
            offset=KPTI_TRAMPOLINE_OFFSET, cr3_switch=False, strategy="kpti-trampoline"
        )

    def break_kaslr_flare(self) -> KaslrBreakResult:
        """Scan candidate trampolines under FLARE (CR3-switch variant)."""
        return self._scan(
            offset=KPTI_TRAMPOLINE_OFFSET, cr3_switch=True, strategy="flare-bypass"
        )

    def break_auto(self) -> KaslrBreakResult:
        """Pick the right strategy for the machine's defenses."""
        kernel = self.machine.kernel
        if kernel.flare:
            return self.break_kaslr_flare()
        if kernel.kpti:
            return self.break_kaslr_kpti()
        return self.break_kaslr()

    def _scan(self, offset: int, cr3_switch: bool, strategy: str) -> KaslrBreakResult:
        start_cycle = self.machine.core.global_cycle
        if self.pool is not None:
            totes = self._sweep_pooled(offset, cr3_switch)
        else:
            # Warm the gadget's code paths so slot 0 is not an outlier.
            for _ in range(3):
                self.probe_tote(
                    KERNEL_TEXT_RANGE_START - 0x200000, cr3_switch=cr3_switch
                )
            totes = {}
            for slot in range(KASLR_SLOTS):
                va = slot_base(slot) + offset
                totes[slot] = self.probe_tote(va, cr3_switch=cr3_switch)
        threshold, is_low = classify_bimodal(totes)
        mapped = sorted(slot for slot, low in is_low.items() if low)
        # Degenerate classification (all candidates look the same) means
        # the oracle is blind -- the AMD case.
        found: Optional[int] = None
        if 0 < len(mapped) < KASLR_SLOTS:
            found = slot_base(mapped[0])
        cycles = self.machine.core.global_cycle - start_cycle
        return KaslrBreakResult(
            found_base=found,
            true_base=self.machine.kernel.layout.base,
            strategy=strategy,
            probes=2 * KASLR_SLOTS,
            cycles=cycles,
            seconds=self.machine.seconds(cycles),
            threshold=threshold,
            totes_by_slot=totes,
            mapped_slots=mapped,
        )

    @staticmethod
    def resolve_strategy(spec, strategy: str = "auto"):
        """Map a strategy name (and a machine's defenses) to scan shape.

        Returns ``(strategy_name, offset, cr3_switch)`` -- the same
        resolution :meth:`break_auto` applies to a live machine, but
        computed from a :class:`~repro.runtime.MachineSpec` so campaign
        expansion never has to build the machine.
        """
        if strategy == "auto":
            if spec.flare:
                strategy = "flare-bypass"
            elif spec.kpti:
                strategy = "kpti-trampoline"
            else:
                strategy = "slot-scan"
        if strategy == "slot-scan":
            return strategy, 0, False
        if strategy == "kpti-trampoline":
            return strategy, KPTI_TRAMPOLINE_OFFSET, False
        if strategy == "flare-bypass":
            return strategy, KPTI_TRAMPOLINE_OFFSET, True
        raise ValueError(f"unknown KASLR strategy {strategy!r}")

    @classmethod
    def campaign_trials(
        cls,
        spec,
        strategy: str = "auto",
        eviction: str = "direct",
        suppression: Optional[str] = None,
        start_index: int = 0,
    ):
        """The campaign adapter: expand one full sweep into trial payloads.

        Returns ``(pairs, next_index)`` where *pairs* is a list of
        ``(slot, KaslrTrial)`` covering all 512 candidates under the
        resolved *strategy*, with trial indices allocated monotonically
        from *start_index*.
        """
        from repro.runtime.tasks import KaslrTrial

        _, offset, cr3_switch = cls.resolve_strategy(spec, strategy)
        pairs = []
        index = start_index
        for slot in range(KASLR_SLOTS):
            pairs.append(
                (
                    slot,
                    KaslrTrial(
                        spec=spec,
                        va=slot_base(slot) + offset,
                        cr3_switch=cr3_switch,
                        trial_index=index,
                        eviction=eviction,
                        suppression=suppression,
                    ),
                )
            )
            index += 1
        return pairs, index

    def _sweep_pooled(self, offset: int, cr3_switch: bool) -> Dict[int, int]:
        """Fan the 512-slot sweep across the trial pool, one slot per trial.

        Each trial warms its worker machine with a probe of a known
        unmapped reference before the timed double-probe, so the first
        trial on a fresh worker behaves like the thousandth.  Summed
        per-trial cycles are charged to this machine's timeline.
        """
        from repro.runtime.spec import MachineSpec
        from repro.runtime.tasks import run_kaslr_trial

        if self._spec is None:
            self._spec = MachineSpec.of(self.machine)
        strategy = "flare-bypass" if cr3_switch else (
            "kpti-trampoline" if offset == KPTI_TRAMPOLINE_OFFSET else "slot-scan"
        )
        pairs, self._trial_counter = self.campaign_trials(
            self._spec,
            strategy=strategy,
            eviction=self.eviction,
            suppression=self.builder.suppression.value,
            start_index=self._trial_counter,
        )
        trials = [trial for _, trial in pairs]
        outcomes = self.pool.map(run_kaslr_trial, trials)
        self.machine.core.global_cycle += sum(o.cycles for o in outcomes)
        return {slot: outcome.totes[0] for slot, outcome in enumerate(outcomes)}
