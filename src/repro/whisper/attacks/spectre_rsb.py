"""TET-Spectre-V5-RSB (§4.3.3, Listing 1): RSB misprediction + TET.

``call`` pushes the return site onto the return stack buffer; the
trampoline overwrites the architectural return address and ``clflush``es
it, so ``ret`` both mispredicts (transiently executing the return-site
gadget) and resolves late (the corrected target must come from DRAM).
Inside that window, a Jcc keyed on the secret byte either follows its
trained direction (skipping a nop sled) or mispredicts into the sled,
changing how much wrong-path work the final redirect must drain.
Following Listing 1, the byte is recovered as the **argmax** of the
spend-time scan.

The secret is attacker-address-space data that the attack never reads
architecturally (a sandboxed-JIT scenario): only the transient return
path dereferences it.  No fault, no suppression -- which is also why
TET-RSB is the fastest TET attack (§4.1's 21.5 KB/s on the i9-13900K).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.whisper.analysis import ArgExtremeDecoder, ByteScanResult
from repro.whisper.attacks.meltdown import LeakResult
from repro.whisper.gadgets import GadgetBuilder


class TetSpectreRsb:
    """The TET-RSB attack bound to one machine."""

    def __init__(
        self,
        machine,
        batches: int = 1,
        sled: int = 24,
        values: Sequence[int] = range(256),
    ) -> None:
        self.machine = machine
        self.batches = batches
        self.values = list(values)
        self.builder = GadgetBuilder(machine)
        self.program = self.builder.spectre_rsb(sled=sled)
        self.decoder = ArgExtremeDecoder("max")
        stack_base = machine.alloc_data(pages=2)
        #: Stack top, mid-page so the call's push stays on mapped memory.
        self.stack_top = stack_base + 0x1800
        self.secret_va = machine.alloc_data()
        self._secret = b""
        self._warmed = False

    def install_secret(self, secret: bytes) -> None:
        """Place the transient-only secret in the sandboxed region."""
        self._secret = bytes(secret)
        self.machine.write_data(self.secret_va, self._secret)

    def scan_byte(self, index: int) -> ByteScanResult:
        """Leak secret byte *index* through the RSB window."""
        if not self._warmed:
            # Cold code/BTB/DSB state distorts the first few windows.
            for _ in range(4):
                self.machine.run(
                    self.program,
                    regs={"rsp": self.stack_top, "r12": self.secret_va, "r9": 256},
                )
            self._warmed = True
        totes = {test: [] for test in self.values}
        for _ in range(self.batches):
            for test in self.values:
                result = self.machine.run(
                    self.program,
                    regs={
                        "rsp": self.stack_top,
                        "r12": self.secret_va + index,
                        "r9": test,
                    },
                )
                totes[test].append(result.regs.read("r15") - result.regs.read("r14"))
        return self.decoder.decode(totes)

    def leak(self, length: Optional[int] = None) -> LeakResult:
        """Leak *length* bytes of the installed secret."""
        if not self._secret:
            raise RuntimeError("no secret installed; call install_secret")
        if length is None:
            length = len(self._secret)
        start_cycle = self.machine.core.global_cycle
        scans = [self.scan_byte(index) for index in range(length)]
        cycles = self.machine.core.global_cycle - start_cycle
        seconds = self.machine.seconds(cycles)
        return LeakResult(
            data=bytes(scan.value for scan in scans),
            expected=self._secret[:length],
            cycles=cycles,
            seconds=seconds,
            bytes_per_second=length / seconds if seconds else float("inf"),
            scans=scans,
        )
