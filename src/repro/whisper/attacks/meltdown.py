"""TET-Meltdown (§4.3.1): Meltdown with Whisper as the covert channel.

Phase one triggers the transient window with a faulting load of the kernel
secret and executes a Jcc keyed on the transiently forwarded byte; phase
two reads the two timestamps.  The argmax of the ToTE over test values
0..255 is the secret byte -- the ToTE is *longer* on the match because the
nested mispredict's recovery serialises with the fault flush.

Preconditions, as on real hardware: the CPU must be Meltdown-vulnerable
and the secret line must be cache-hot (a victim syscall path touches it).
On fixed silicon the forwarded value is always zero and the scan decodes
``0x00`` for every byte -- the attack visibly fails, as in Table 2's ✗
columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.whisper.analysis import ArgExtremeDecoder, ByteScanResult, error_rate
from repro.whisper.gadgets import GadgetBuilder, Suppression


@dataclass
class LeakResult:
    """Outcome of leaking a byte range."""

    data: bytes
    expected: bytes
    cycles: int
    seconds: float
    bytes_per_second: float
    scans: List[ByteScanResult] = field(default_factory=list)

    @property
    def error_rate(self) -> float:
        return error_rate(self.expected, self.data)

    @property
    def success(self) -> bool:
        """Majority-correct leak counts as success (Table 2's criterion)."""
        return self.error_rate < 0.5

    def __str__(self) -> str:
        return (
            f"leaked {len(self.data)} B at {self.bytes_per_second:,.0f} B/s simulated, "
            f"error rate {self.error_rate:.2%}"
        )


class TetMeltdown:
    """The TET-MD attack bound to one machine."""

    def __init__(
        self,
        machine,
        batches: int = 5,
        values: Sequence[int] = range(256),
        suppression: Optional[Suppression] = None,
    ) -> None:
        self.machine = machine
        self.batches = batches
        self.values = list(values)
        self.builder = GadgetBuilder(machine, suppression=suppression)
        self.program = self.builder.meltdown()
        self.decoder = ArgExtremeDecoder("max")
        self._warmed = False

    def scan_byte(self, va: int) -> ByteScanResult:
        """Leak the byte at kernel address *va*."""
        if not self._warmed:
            for _ in range(4):  # shed cold-code noise
                self.machine.run(self.program, regs={"r13": va, "r9": 256})
            self._warmed = True
        totes = {test: [] for test in self.values}
        for _ in range(self.batches):
            # Victim activity keeps the secret line hot (the Meltdown
            # precondition); a cold line forwards nothing.
            self.machine.victim_touch(va)
            for test in self.values:
                result = self.machine.run(self.program, regs={"r13": va, "r9": test})
                totes[test].append(result.regs.read("r15") - result.regs.read("r14"))
        return self.decoder.decode(totes)

    def leak(self, va: Optional[int] = None, length: Optional[int] = None) -> LeakResult:
        """Leak *length* bytes starting at *va* (default: the kernel secret)."""
        kernel = self.machine.kernel
        if va is None:
            va = kernel.secret_va
        if length is None:
            length = len(kernel.secret)
        expected = self._expected(va, length)
        start_cycle = self.machine.core.global_cycle
        scans = [self.scan_byte(va + index) for index in range(length)]
        cycles = self.machine.core.global_cycle - start_cycle
        seconds = self.machine.seconds(cycles)
        return LeakResult(
            data=bytes(scan.value for scan in scans),
            expected=expected,
            cycles=cycles,
            seconds=seconds,
            bytes_per_second=length / seconds if seconds else float("inf"),
            scans=scans,
        )

    def _expected(self, va: int, length: int) -> bytes:
        """Ground truth for error-rate accounting (simulator privilege)."""
        kernel_space = self.machine.kernel.kernel_space
        out = bytearray()
        for index in range(length):
            pte = kernel_space.lookup(va + index)
            if pte is None:
                out.append(0)
                continue
            out.append(self.machine.physical.read_u8(pte.physical_address(va + index)))
        return bytes(out)
