"""TET-ZombieLoad (§4.3.2): MDS sampling through the TET channel.

The victim (another process / SMT sibling) handles its secret, leaving the
line in the fill buffers.  The attacker's faulting load gets a stale LFB
byte forwarded (no address control -- the classic ZombieLoad *sampling*
limitation) and jumps over a nop sled when it matches the test value.
The match therefore *shortens* the transient window ("it is interesting
that the ToTE becomes shorter if the Jcc is triggered", §4.3.2), and the
decoder is the argmin variant.

The attacker chooses the byte *offset within the line* by faulting at an
address with the same line offset, as the real attack does.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.whisper.analysis import ArgExtremeDecoder, ByteScanResult
from repro.whisper.attacks.meltdown import LeakResult
from repro.whisper.gadgets import GadgetBuilder, Suppression

#: The faulting region: the (unmapped) null page, offset-addressable so the
#: attacker can steer the line offset of the assist.
NULL_PAGE = 0x0


class TetZombieload:
    """The TET-ZBL attack bound to one machine."""

    def __init__(
        self,
        machine,
        batches: int = 7,
        sled: int = 32,
        values: Sequence[int] = range(256),
        suppression: Optional[Suppression] = None,
    ) -> None:
        self.machine = machine
        self.batches = batches
        self.values = list(values)
        self.builder = GadgetBuilder(machine, suppression=suppression)
        self.program = self.builder.zombieload(sled=sled)
        self.decoder = ArgExtremeDecoder("min")
        #: The victim's working buffer (line-aligned user page).
        self.victim_va = machine.alloc_data()
        self._victim_secret = b""
        self._victim_process = None
        self.samples_per_probe = 1
        self._warmed = False

    def install_victim_secret(self, secret: bytes) -> None:
        """Give the victim process its secret (at most one cache line --
        ZombieLoad samples whole lines; longer secrets need per-line
        leaking, see :meth:`leak`)."""
        if len(secret) > 64:
            raise ValueError("victim secret must fit one cache line (64 B)")
        self._victim_secret = bytes(secret)
        self.machine.write_data(self.victim_va, self._victim_secret)

    def attach_victim(self, victim) -> None:
        """Leak from a real :class:`~repro.sim.victim.VictimProcess`
        instead of the abstract victim-store helper: its worker loop runs
        on a sibling core with its own address space, and only the shared
        line fill buffers carry the secret across.

        The victim's own working set competes for LFB entries (its
        pressure lines are zero-filled), so this mode switches to the
        integrate-then-argmin decoder and filters the zero byte out of
        the candidate set -- the dominant-value filtering every real MDS
        proof of concept performs."""
        self._victim_process = victim
        self._victim_secret = victim.secret
        self.decoder = ArgExtremeDecoder("min", statistic="mean")
        self.values = [value for value in self.values if value != 0]
        # Several faulting loads per test value, keeping the fastest:
        # the assist samples rotating fill-buffer entries, so repeated
        # sampling is how real MDS PoCs catch the line they want.
        self.samples_per_probe = 3

    def victim_activity(self) -> None:
        """The victim touches its secret, refreshing the fill buffers."""
        if self._victim_process is not None:
            self._victim_process.work(iterations=len(self._victim_secret))
            return
        self.machine.victim_store(self.victim_va, self._victim_secret, thread_id=1)

    def scan_offset(self, offset: int) -> ByteScanResult:
        """Sample the stale byte at line *offset* (0..63)."""
        if not self._warmed:
            for _ in range(4):  # shed cold-code noise
                self.machine.run(self.program, regs={"r13": NULL_PAGE, "r9": 256})
            self._warmed = True
        totes = {test: [] for test in self.values}
        for _ in range(self.batches):
            self.victim_activity()
            for test in self.values:
                samples = []
                for _ in range(self.samples_per_probe):
                    result = self.machine.run(
                        self.program,
                        regs={"r13": NULL_PAGE + (offset & 63), "r9": test},
                    )
                    samples.append(
                        result.regs.read("r15") - result.regs.read("r14")
                    )
                totes[test].append(min(samples))
        return self.decoder.decode(totes)

    def leak(self, length: Optional[int] = None) -> LeakResult:
        """Sample the victim's secret line byte-by-byte."""
        if not self._victim_secret:
            raise RuntimeError("no victim secret installed; call install_victim_secret")
        if length is None:
            length = len(self._victim_secret)
        start_cycle = self.machine.core.global_cycle
        scans = [self.scan_offset(index) for index in range(length)]
        cycles = self.machine.core.global_cycle - start_cycle
        seconds = self.machine.seconds(cycles)
        return LeakResult(
            data=bytes(scan.value for scan in scans),
            expected=self._victim_secret[:length],
            cycles=cycles,
            seconds=seconds,
            bytes_per_second=length / seconds if seconds else float("inf"),
            scans=scans,
        )
