"""TET-Spectre-V1 (extension): bounds-check bypass through the TET channel.

The paper demonstrates TET with Meltdown-class faults, MDS assists and
RSB misprediction; the obvious fourth speculation primitive is the
original Spectre v1 window -- a bounds check whose length operand was
flushed to DRAM resolves late, and the branch predictor (trained on
in-bounds accesses) transiently runs the out-of-bounds access.  Inside
that window the usual secret-keyed Jcc does the talking: a match
mispredicts into a nop sled, inflating the wrong-path drain the bounds
redirect must perform -- argmax decoding, like TET-RSB.

This composes two *branch* speculations (the outer v1 window, the inner
TET Jcc) with no fault anywhere, so like TET-RSB it needs no TSX and no
signal handler and works on every simulated CPU.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.whisper.analysis import ArgExtremeDecoder, ByteScanResult
from repro.whisper.attacks.meltdown import LeakResult
from repro.whisper.gadgets import GadgetBuilder


class TetSpectreV1:
    """The TET-V1 attack bound to one machine."""

    def __init__(
        self,
        machine,
        batches: int = 1,
        sled: int = 24,
        values: Sequence[int] = range(256),
        train_runs: int = 2,
    ) -> None:
        self.machine = machine
        self.batches = batches
        self.values = list(values)
        self.train_runs = train_runs
        self.builder = GadgetBuilder(machine)
        self.program = self.builder.spectre_v1(sled=sled)
        self.decoder = ArgExtremeDecoder("max")
        # The sandboxed array: one page of attacker-space data the
        # bounds check architecturally protects...
        self.array_va = machine.alloc_data()
        self.array_len = 64
        # ...and the secret sits right past it, in the protected zone.
        self.secret_va = machine.alloc_data()
        self.length_va = machine.alloc_data()
        machine.write_data(self.length_va, self.array_len.to_bytes(8, "little"))
        machine.write_data(self.array_va, bytes(range(self.array_len)))
        self._secret = b""
        self._warmed = False

    def install_secret(self, secret: bytes) -> None:
        """Place the out-of-bounds secret."""
        self._secret = bytes(secret)
        self.machine.write_data(self.secret_va, self._secret)

    def _oob_index(self, byte_index: int) -> int:
        """Index that lands on secret byte *byte_index* (past the array)."""
        return (self.secret_va + byte_index) - self.array_va

    def _run(self, index: int, test: int):
        return self.machine.run(
            self.program,
            regs={
                "r10": self.array_va,
                "r11": self.length_va,
                "rdi": index,
                "r9": test,
            },
        )

    def _train_in_bounds(self) -> None:
        """Legitimate accesses: train the bounds branch to fall through."""
        for run in range(self.train_runs):
            self._run(run % self.array_len, 256)

    def scan_byte(self, byte_index: int) -> ByteScanResult:
        """Leak secret byte *byte_index* through the v1 window."""
        if not self._warmed:
            for _ in range(4):
                self._train_in_bounds()
            # One architectural-ish touch keeps the secret line cache-hot
            # (the victim uses its own data; here the transient load's
            # first pass warms it).
            self._run(self._oob_index(0), 256)
            self._warmed = True
        index = self._oob_index(byte_index)
        totes = {test: [] for test in self.values}
        for _ in range(self.batches):
            for test in self.values:
                self._train_in_bounds()
                result = self._run(index, test)
                totes[test].append(result.regs.read("r15") - result.regs.read("r14"))
        return self.decoder.decode(totes)

    def leak(self, length: Optional[int] = None) -> LeakResult:
        """Leak *length* bytes of the out-of-bounds secret."""
        if not self._secret:
            raise RuntimeError("no secret installed; call install_secret")
        if length is None:
            length = len(self._secret)
        start_cycle = self.machine.core.global_cycle
        scans = [self.scan_byte(index) for index in range(length)]
        cycles = self.machine.core.global_cycle - start_cycle
        seconds = self.machine.seconds(cycles)
        return LeakResult(
            data=bytes(scan.value for scan in scans),
            expected=self._secret[:length],
            cycles=cycles,
            seconds=seconds,
            bytes_per_second=length / seconds if seconds else float("inf"),
            scans=scans,
        )
