"""The §4.4 SMT covert channel: exceptions as cross-thread symbols.

The Trojan (thread 0) sends a ``1`` by triggering and suppressing a page
fault -- the flush and its recovery monopolise shared pipeline resources
-- and a ``0`` by running plain computation.  The spy (thread 1) times a
nop loop; slow iterations decode as ``1``.

Two operating points, as in the paper:

* ``"reliable"``: long spy loops and a burst of faults per bit -- the
  1 B/s-with-<5 %-error prototype;
* ``"secsmt"``: the SecSMT-evaluation configuration -- short loops, one
  fault per bit, much higher raw rate at a worse error rate (the paper
  reports 268 KB/s at 28 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.whisper.analysis import bit_error_rate
from repro.whisper.gadgets import GadgetBuilder

#: Mode presets: (spy loop iterations, trojan faults per '1', idle spins).
MODES = {
    "reliable": (48, 4, 192),
    "secsmt": (6, 1, 24),
}


@dataclass
class SmtChannelStats:
    """Per-transmission statistics (§4.4's reporting)."""

    bits_sent: int
    bits_received: List[int]
    error_rate: float
    cycles: int
    seconds: float
    bytes_per_second: float
    threshold: float
    samples: List[int]

    def __str__(self) -> str:
        return (
            f"{self.bits_sent} bits in {self.seconds * 1e3:.3f} ms simulated "
            f"-> {self.bytes_per_second:,.0f} B/s, bit error rate {self.error_rate:.2%}"
        )


class SmtCovertChannel:
    """Trojan/spy covert channel over one SMT physical core.

    ``repetition`` enables the paper's stated future work ("we leave
    speed up with high accuracy ... to future work"): each payload bit is
    sent ``repetition`` times in the fast mode and majority-decoded,
    trading a constant rate factor for error suppression -- a repetition
    code turns the SecSMT operating point's raw errors into exponentially
    rarer decoded errors.
    """

    def __init__(self, machine, mode: str = "reliable", repetition: int = 1) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {sorted(MODES)}")
        if repetition < 1 or repetition % 2 == 0:
            raise ValueError("repetition must be a positive odd integer")
        self.repetition = repetition
        self.machine = machine
        self.mode = mode
        self.smt = machine.smt()
        spy_iters, faults, idle_iters = MODES[mode]
        builder = GadgetBuilder(machine)
        self.spy_program = builder.nop_loop(iterations=spy_iters)
        self.one_program = builder.fault_burst(faults=faults)
        self.zero_program = builder.idle_loop(iterations=idle_iters)
        # Trojan gadgets fault on the null page; signal-mode gadgets carry
        # their own handler, TSX gadgets none.
        self._trojan_regs = {"r13": 0x0}

    def _sample_bit(self, bit: int) -> int:
        """Co-run one symbol; return the spy's effective loop time."""
        trojan = self.one_program if bit else self.zero_program
        # Hand the trojan core its handler when the gadget carries one.
        handler_pc = getattr(trojan, "signal_handler_pc", None)
        self.smt.thread0.signal_handler_pc = handler_pc
        outcome = self.smt.run_pair(
            trojan, self.spy_program, trojan_regs=dict(self._trojan_regs)
        )
        return outcome.spy_effective_cycles

    def transmit(self, bits: Sequence[int]) -> SmtChannelStats:
        """Send a bit sequence; decode against a preamble-calibrated
        threshold.

        As in real covert channels, the sender first transmits a known
        sync pattern; the receiver averages the '1' and '0' symbol times
        and thresholds at the midpoint.  A couple of warm-up symbols are
        discarded to shed cold-structure noise.
        """
        for _ in range(2):  # warm-up, discarded
            self._sample_bit(0)
            self._sample_bit(1)
        preamble = [1, 0, 1, 0]
        calib = [self._sample_bit(bit) for bit in preamble]
        ones = [s for bit, s in zip(preamble, calib) if bit]
        zeros = [s for bit, s in zip(preamble, calib) if not bit]
        threshold = (sum(ones) / len(ones) + sum(zeros) / len(zeros)) / 2
        start_cycle = max(self.smt.thread0.global_cycle, self.smt.thread1.global_cycle)
        samples = []
        received = []
        for bit in bits:
            votes = []
            symbol_samples = []
            for _ in range(self.repetition):
                sample = self._sample_bit(bit)
                symbol_samples.append(sample)
                votes.append(1 if sample > threshold else 0)
            received.append(1 if sum(votes) * 2 > len(votes) else 0)
            samples.append(symbol_samples[len(symbol_samples) // 2])
        end_cycle = max(self.smt.thread0.global_cycle, self.smt.thread1.global_cycle)
        cycles = end_cycle - start_cycle
        seconds = self.machine.seconds(cycles)
        bytes_per_second = (len(bits) / 8) / seconds if seconds else float("inf")
        return SmtChannelStats(
            bits_sent=len(bits),
            bits_received=received,
            error_rate=bit_error_rate(list(bits), received),
            cycles=cycles,
            seconds=seconds,
            bytes_per_second=bytes_per_second,
            threshold=threshold,
            samples=samples,
        )

    def transmit_bytes(self, payload: bytes) -> SmtChannelStats:
        """Send *payload* MSB-first."""
        bits = []
        for byte in payload:
            bits.extend((byte >> shift) & 1 for shift in range(7, -1, -1))
        return self.transmit(bits)
