"""Receiver self-calibration: measure the channel before trusting it.

A covert-channel receiver controls both ends during setup, so it can
characterise its own channel: send known bytes, measure the quiet ToTE
distribution and the trigger delta, and choose the batch count that
reaches a target error rate.  This is the adaptive layer a production
TET toolkit would ship on top of the paper's fixed-batch receiver, and
it quantifies the signal-to-noise budget the E18 ablation sweeps.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import List

from repro.whisper.channel import NULL_POINTER, TetCovertChannel


@dataclass
class ChannelCalibration:
    """What the calibration pass learned."""

    quiet_mean: float
    quiet_stdev: float
    trigger_mean: float
    trigger_stdev: float
    samples: int

    @property
    def delta(self) -> float:
        """The signal: mean ToTE shift when the Jcc triggers."""
        return self.trigger_mean - self.quiet_mean

    @property
    def noise(self) -> float:
        """The per-sample noise the decoder must overcome."""
        return max(self.quiet_stdev, self.trigger_stdev)

    @property
    def snr(self) -> float:
        """Signal-to-noise ratio (infinite on a noise-free machine)."""
        if self.noise == 0:
            return math.inf
        return abs(self.delta) / self.noise

    def recommended_batches(self, candidates: int = 256, z: float = 3.5) -> int:
        """Batches needed so the mean-statistic decoder separates the
        trigger from *candidates* quiet competitors at ~*z* sigma.

        With n batches the mean's noise shrinks by sqrt(n); we require
        ``|delta| > z * noise / sqrt(n)`` (z defaults near the expected
        maximum of a few hundred standard normals) and double the result:
        a scan's effective noise exceeds the fixed-value calibration's
        (per-test systematic offsets), so the estimate is a lower bound."""
        if self.delta == 0:
            raise ValueError("channel is flat: no signal to calibrate against")
        if self.noise == 0:
            return 1
        needed = 2 * (z * self.noise / abs(self.delta)) ** 2
        return max(1, math.ceil(needed))

    def usable(self) -> bool:
        """A channel with |delta| below one cycle is not decodable."""
        return abs(self.delta) >= 1.0


def calibrate_channel(channel: TetCovertChannel, samples: int = 24) -> ChannelCalibration:
    """Characterise *channel* by sending known bytes through it.

    Uses byte 0x00 with probes at a never-matching and at the matching
    test value, interleaving retraining the way the scan itself does.
    """
    machine = channel.machine
    known = 0x5C
    machine.write_data(channel.sender_page, bytes([known]))

    def probe(test: int) -> int:
        result = machine.run(
            channel.program,
            regs={"r12": channel.sender_page, "r13": NULL_POINTER, "r9": test},
        )
        return result.regs.read("r15") - result.regs.read("r14")

    for _ in range(6):  # warm code and predictor
        probe(256)
    quiet: List[int] = []
    trigger: List[int] = []
    for _ in range(samples):
        for _ in range(3):  # keep the predictor on the common direction
            probe(256)
        quiet.append(probe(256))
        for _ in range(3):
            probe(256)
        trigger.append(probe(known))
    return ChannelCalibration(
        quiet_mean=statistics.mean(quiet),
        quiet_stdev=statistics.pstdev(quiet),
        trigger_mean=statistics.mean(trigger),
        trigger_stdev=statistics.pstdev(trigger),
        samples=samples,
    )
