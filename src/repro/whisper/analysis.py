"""Decoding ToTE measurements back into bytes and booleans.

The paper's receiver is simple by design (§4.3.1): scan the test value
0..255, record the ToTE of each probe, take the argmax (or argmin, for
the TET-ZBL/shorter-window gadgets) per batch, and after several batches
take the most frequent winner.  TET-KASLR instead needs a binary
classifier over a bimodal ToTE population; :func:`classify_bimodal`
splits it at the widest gap.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple


@dataclass
class ByteScanResult:
    """Outcome of decoding one byte from batched ToTE scans."""

    value: int
    confidence: float  # fraction of batches that voted for the winner
    votes: Dict[int, int] = field(default_factory=dict)
    totes_by_test: Dict[int, List[int]] = field(default_factory=dict)


class ArgExtremeDecoder:
    """The argmax/argmin batch decoder of §4.3.1.

    ``mode="max"`` decodes channels where the trigger *lengthens* the
    window (TET-CC, TET-MD, TET-RSB); ``mode="min"`` decodes TET-ZBL,
    where the trigger shortens it.

    ``statistic`` selects how batches combine:

    * ``"vote"`` -- the paper's receiver: per-batch arg-extreme, then a
      majority vote across batches;
    * ``"mean"`` -- integrate first (mean ToTE per test value across all
      batches), then take one arg-extreme.  Averaging suppresses ambient
      noise by sqrt(batches), so this variant survives jitter comparable
      to the ~8-cycle signal where per-batch voting collapses (the E18
      noise ablation quantifies the difference).
    """

    def __init__(self, mode: str = "max", statistic: str = "vote") -> None:
        if mode not in ("max", "min"):
            raise ValueError(f"mode must be 'max' or 'min', not {mode!r}")
        if statistic not in ("vote", "mean"):
            raise ValueError(f"statistic must be 'vote' or 'mean', not {statistic!r}")
        self.mode = mode
        self.statistic = statistic

    def decode(self, totes_by_test: Dict[int, List[int]]) -> ByteScanResult:
        """Decode one byte from ``{test_value: [tote per batch]}``."""
        if not totes_by_test:
            raise ValueError("no measurements to decode")
        batch_counts = {len(samples) for samples in totes_by_test.values()}
        if len(batch_counts) != 1:
            raise ValueError(f"ragged batches: {sorted(batch_counts)}")
        batches = batch_counts.pop()
        pick = max if self.mode == "max" else min
        if self.statistic == "mean":
            means = {
                test: sum(samples) / batches
                for test, samples in totes_by_test.items()
            }
            value = pick(means, key=means.__getitem__)
            return ByteScanResult(
                value=value,
                confidence=1.0,  # a single integrated decision
                votes={value: batches},
                totes_by_test=totes_by_test,
            )
        votes: Counter = Counter()
        for batch in range(batches):
            winner = pick(totes_by_test, key=lambda test: totes_by_test[test][batch])
            votes[winner] += 1
        value, top_votes = votes.most_common(1)[0]
        return ByteScanResult(
            value=value,
            confidence=top_votes / batches,
            votes=dict(votes),
            totes_by_test=totes_by_test,
        )


def classify_bimodal(samples: Dict[int, int]) -> Tuple[float, Dict[int, bool]]:
    """Split a bimodal population at its widest gap.

    Returns ``(threshold, {key: is_low})``.  Used by TET-KASLR: mapped
    candidates form the low (fast) cluster, unmapped the high (slow) one.
    Degenerate unimodal inputs put everything in the low cluster.
    """
    if not samples:
        raise ValueError("nothing to classify")
    ordered = sorted(set(samples.values()))
    if len(ordered) == 1:
        threshold = ordered[0] + 0.5
        return threshold, {key: True for key in samples}
    gaps = [(ordered[i + 1] - ordered[i], i) for i in range(len(ordered) - 1)]
    widest, index = max(gaps)
    threshold = (ordered[index] + ordered[index + 1]) / 2
    return threshold, {key: value <= threshold for key, value in samples.items()}


def error_rate(sent: bytes, received: bytes) -> float:
    """Byte error rate between a sent and received payload."""
    if not sent:
        return 0.0
    errors = sum(1 for a, b in zip(sent, received) if a != b)
    errors += abs(len(sent) - len(received))
    return errors / max(len(sent), len(received))


def bit_error_rate(sent: Sequence[int], received: Sequence[int]) -> float:
    """Bit error rate between two bit sequences (§4.4's metric)."""
    if not sent:
        return 0.0
    errors = sum(1 for a, b in zip(sent, received) if a != b)
    errors += abs(len(sent) - len(received))
    return errors / max(len(sent), len(received))


def throughput_bytes_per_second(payload_bytes: int, cycles: int, ghz: float) -> float:
    """Simulated channel throughput in bytes/second."""
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    seconds = cycles / (ghz * 1e9)
    return payload_bytes / seconds


def argsort_votes(votes: Dict[int, int], top: int = 5) -> List[Tuple[int, int]]:
    """The *top* vote-getters, for debugging noisy scans."""
    return sorted(votes.items(), key=lambda item: -item[1])[:top]
