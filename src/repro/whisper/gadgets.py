"""TET gadget builders: Figure 1a, Listing 1, Listing 2 and friends.

All gadgets are parameterised through registers so each is assembled and
loaded once and then run many times:

========  =====================================================
register  meaning
========  =====================================================
``r9``    the test value being scanned (0..255)
``r12``   pointer to an architecturally readable byte (TET-CC's
          sender value, TET-RSB's transient-only secret)
``r13``   the faulting / probed address
``r14``   first ``rdtsc`` (written by the gadget)
``r15``   second ``rdtsc`` (written by the gadget)
``rsp``   stack top (TET-RSB only)
========  =====================================================

Every gadget follows the paper's measurement discipline: serialising
timestamp reads around the transient block, and either a TSX transaction
or a registered SIGSEGV handler to suppress the fault -- the two
``transient_begin()`` strategies of Figure 1a.
"""

from __future__ import annotations

import enum
import functools
from typing import Dict, Optional, Tuple

from repro.isa.program import Program


def _memoized(method):
    """Per-builder gadget memoization.

    A gadget method is a pure function of the builder (machine +
    suppression) and its arguments: the same call re-assembles the same
    source and maps another copy of the same code.  Campaign workers
    build gadgets repeatedly across warm-up paths, so each builder keeps
    the first :class:`Program` per (method, args) and returns it for
    every later call.
    """

    @functools.wraps(method)
    def wrapper(self, *args, **kwargs):
        key = (method.__name__, args, tuple(sorted(kwargs.items())))
        program = self._programs.get(key)
        if program is None:
            program = method(self, *args, **kwargs)
            self._programs[key] = program
        return program

    return wrapper


class Suppression(enum.Enum):
    """How the gadget swallows the page fault."""

    TSX = "tsx"
    SIGNAL = "signal"


#: Label the builders place where execution resumes after suppression.
RESUME_LABEL = "tet_resume"


class GadgetBuilder:
    """Builds and loads the paper's gadgets for one machine."""

    def __init__(self, machine, suppression: Optional[Suppression] = None) -> None:
        self.machine = machine
        if suppression is None:
            suppression = Suppression.TSX if machine.model.has_tsx else Suppression.SIGNAL
        if suppression is Suppression.TSX and not machine.model.has_tsx:
            raise ValueError(f"{machine.model.name} has no TSX")
        self.suppression = suppression
        #: Memoized gadget programs, keyed by (method name, args).
        self._programs: Dict[Tuple, Program] = {}

    # -- assembly plumbing -------------------------------------------------------

    def _wrap_transient(self, transient_block: str, prologue: str = "") -> str:
        """Wrap *transient_block* in the rdtsc/suppression scaffolding."""
        if self.suppression is Suppression.TSX:
            return f"""
{prologue}
    rdtsc
    mov r14, rax            ; start_time = rdtsc()
    xbegin {RESUME_LABEL}    ; transient_begin()
{transient_block}
    xend
{RESUME_LABEL}:
    rdtsc
    mov r15, rax            ; spend_time = rdtsc() - start_time
    hlt
"""
        return f"""
{prologue}
    rdtsc
    mov r14, rax            ; start_time = rdtsc()
{transient_block}
    nop                      ; never reached architecturally
{RESUME_LABEL}:              ; SIGSEGV handler lands here
    rdtsc
    mov r15, rax
    hlt
"""

    def _load(self, source: str) -> Program:
        program = self.machine.load_program(source)
        if self.suppression is Suppression.SIGNAL:
            self.machine.set_signal_handler(program, RESUME_LABEL)
        return program

    # -- the gadgets ----------------------------------------------------------------

    @_memoized
    def figure1(self) -> Program:
        """The Figure 1a gadget (TET-CC).

        The compared byte is *architectural* (loaded from ``[r12]`` before
        the window): the channel transmits the Jcc outcome, not a leaked
        value.  The faulting access at ``[r13]`` (the paper uses address
        0) only opens the transient window.
        """
        transient = """
    load r8, [r13]          ; *(char*)(0x0) -- opens the window
    cmp rbx, r9             ; if (test_value == sent_byte)
    jne fig1_skip
    nop                     ;     asm("nop")
fig1_skip:"""
        prologue = """
    loadb rbx, [r12]        ; the sender's byte, read architecturally
    mfence"""
        return self._load(self._wrap_transient(transient, prologue))

    @_memoized
    def meltdown(self) -> Program:
        """TET-MD: the Jcc consumes the *transiently forwarded* kernel byte.

        Identical shape to Figure 1a, but the compare reads ``r8`` -- the
        destination of the faulting load -- so only a Meltdown-vulnerable
        pipeline produces a test-value-dependent branch.
        """
        transient = """
    loadb r8, [r13]         ; kernel secret, forwarded transiently
    cmp r8, r9              ; if (secret == test_value)
    jne md_skip
    nop
md_skip:"""
        return self._load(self._wrap_transient(transient))

    @_memoized
    def zombieload(self, sled: int = 32) -> Program:
        """TET-ZBL: the match *skips* a nop sled, shortening the window.

        The faulting load samples a stale line-fill-buffer byte (no
        address control).  On a match the ``je`` jumps past the sled, so
        fewer uops are in flight when the flush drains the ROB -- the ToTE
        gets *shorter*, the opposite sign to TET-MD, exactly as §4.3.2
        reports.  Decode with the argmin decoder.
        """
        nops = "\n".join("    nop" for _ in range(sled))
        transient = f"""
    loadb r8, [r13]         ; faulting load -> LFB stale data
    cmp r8, r9
    je zbl_end              ; match: skip the sled (shorter ToTE)
{nops}
zbl_end:"""
        return self._load(self._wrap_transient(transient))

    @_memoized
    def spectre_rsb(self, sled: int = 24) -> Program:
        """TET-RSB, the paper's Listing 1.

        ``call`` pushes the return site onto the RSB; the trampoline
        overwrites the architectural return address with ``@rsb_final``
        and flushes it, so ``ret`` resolves late and transiently executes
        the return-site gadget.  On a match the trained-taken ``jne``
        mispredicts into the nop sled, inflating the wrong-path drain the
        eventual redirect must perform -- ToTE is *maximal* at the secret
        value, matching Listing 1's ``argmax``.
        """
        nops = "\n".join("    nop" for _ in range(sled))
        source = f"""
    lfence
    rdtsc
    mov r14, rax            ; start_time
    call rsb_tramp
rsb_ret_site:               ; transient return target (stale RSB entry)
    loadb r8, [r12]         ; access secret (transient only)
    cmp r8, r9              ; if (test_value == *secret)
    jne rsb_skip
{nops}
rsb_skip:
    lfence                  ; plug transient issue until the window closes
rsb_tramp:
    mov rax, @rsb_final     ; movabs $2f, %rax
    mov [rsp], rax          ; overwrite the return address
    clflush [rsp]           ; push resolution out to DRAM
    ret                     ; RSB mispredicts back to rsb_ret_site
rsb_final:
    lfence
    rdtsc
    mov r15, rax
    hlt
"""
        return self.machine.load_program(source)

    @_memoized
    def spectre_v1(self, sled: int = 24) -> Program:
        """TET-Spectre-V1 (extension): bounds-check bypass + TET.

        The classic v1 window -- a bounds check whose length operand is
        flushed resolves late, and the trained-in-bounds branch lets an
        out-of-bounds index transiently index past the array -- with the
        TET channel inside instead of a cache probe.  Registers: ``r10``
        array base, ``r11`` pointer to the (flushed) length, ``rdi`` the
        index, ``r9`` the test value.
        """
        nops = "\n".join("    nop" for _ in range(sled))
        source = f"""
    clflush [r11]           ; push the bounds out to DRAM
    mfence
    rdtsc
    mov r14, rax
    mov rax, [r11]          ; array length (slow)
    cmp rdi, rax
    jnc v1_out              ; bounds check: index >= len skips
    mov rbx, r10
    add rbx, rdi
    loadb r8, [rbx]         ; array[index] -- OOB only transiently
    cmp r8, r9
    jne v1_skip
{nops}
v1_skip:
    lfence                  ; plug transient issue until the window closes
v1_out:
    lfence
    rdtsc
    mov r15, rax
    hlt
"""
        return self.machine.load_program(source)

    @_memoized
    def kaslr_probe(self) -> Program:
        """TET-KASLR's probe (the paper's Listing 2 shape).

        A faulting load of the candidate address, a Jcc on the transient
        value, and the timestamp pair.  The ToTE difference between
        TLB-cacheable (mapped) and walk-every-time (unmapped) candidates
        is the mapped-address oracle.
        """
        transient = """
    load r8, [r13]          ; probe the candidate kernel address
    cmp r8, r9
    jz kaslr_skip           ; Listing 2's jz
    nop
kaslr_skip:"""
        prologue = "    mfence"
        return self._load(self._wrap_transient(transient, prologue))

    @_memoized
    def nop_loop(self, iterations: int = 64) -> Program:
        """The §4.4 spy loop: timed nops, no memory traffic."""
        body = "\n".join("    nop" for _ in range(8))
        return self.machine.load_program(f"""
    rdtsc
    mov r14, rax
    mov rcx, {iterations}
spy_loop:
{body}
    sub rcx, 1
    cmp rcx, 0
    jne spy_loop
    rdtsc
    mov r15, rax
    hlt
""")

    @_memoized
    def fault_burst(self, faults: int = 4) -> Program:
        """The §4.4 Trojan's '1' symbol: suppressed page faults in a row."""
        blocks = []
        for index in range(faults):
            blocks.append(f"""
    xbegin trojan_resume_{index}
    load r8, [r13]          ; fault -> pipeline flush on shared core
    nop
trojan_resume_{index}:""")
        body = "\n".join(blocks)
        if self.suppression is Suppression.SIGNAL:
            # One shared landing pad cannot express a burst without TSX;
            # chain single faults through the handler instead.
            source = f"""
    mov rcx, {faults}
trojan_loop:
    load r8, [r13]
    nop
{RESUME_LABEL}:
    sub rcx, 1
    cmp rcx, 0
    jne trojan_loop
    hlt
"""
            program = self.machine.load_program(source)
            self.machine.set_signal_handler(program, RESUME_LABEL)
            return program
        return self.machine.load_program(f"""
{body}
    hlt
""")

    @_memoized
    def idle_loop(self, iterations: int = 32) -> Program:
        """The Trojan's '0' symbol: plain computation.

        Straight-line (unrolled) adds: a loop's exit mispredict would
        itself disturb the shared pipeline and blur the 0/1 symbols.
        """
        adds = "\n".join("    add rax, 1" for _ in range(iterations))
        return self.machine.load_program(f"""
{adds}
    hlt
""")
