"""A log-time TET covert channel: binary search over the byte value.

The paper's receiver scans all 256 test values per byte (§4.3.1).  The
channel itself supports something stronger: with an *ordered* condition
(``jb`` -- below -- instead of ``je``), one probe answers "is the sent
byte below the test value?", and eight probes recover the byte.

The subtlety is prediction state: the argmax decoder never needs to know
which direction the predictor holds, but a binary search must interpret
a *single* probe.  The receiver therefore maintains a software mirror of
the branch's 2-bit counter (it observes every training input, because it
issues every run itself), predicts what the hardware will predict, and
reads "mispredict happened" (ToTE above the calibrated quiet baseline)
as "actual direction != mirrored prediction".  This is an extension
beyond the paper -- TET-CC-BS -- showing the channel is not tied to
equality tests; the bench compares it against the linear scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.whisper.channel import NULL_POINTER, ChannelStats
from repro.whisper.analysis import error_rate
from repro.whisper.gadgets import GadgetBuilder, Suppression


class _PhtMirror:
    """The receiver's model of one bimodal 2-bit counter."""

    def __init__(self) -> None:
        self.counter = 1  # the PHT's weakly-not-taken reset state

    def predict(self) -> bool:
        return self.counter >= 2

    def update(self, taken: bool) -> None:
        self.counter = min(3, self.counter + 1) if taken else max(0, self.counter - 1)


@dataclass
class ProbeOutcome:
    """One ordered probe: the question asked and the answer read."""

    test: int
    tote: int
    mispredicted: bool
    below: bool  # sent byte < test


class BinarySearchChannel:
    """TET-CC-BS: eight ordered probes per byte instead of 256."""

    def __init__(self, machine, suppression: Optional[Suppression] = None) -> None:
        self.machine = machine
        self.builder = GadgetBuilder(machine, suppression=suppression)
        self.program = self._build_ordered_gadget()
        self.sender_page = machine.alloc_data()
        self.mirror = _PhtMirror()
        self._quiet_tote: Optional[int] = None
        self._calibrate()

    def _build_ordered_gadget(self):
        """Figure 1a with an ordered condition: jb fires iff sent < test."""
        transient = """
    load r8, [r13]          ; open the window
    cmp rbx, r9             ; sent byte vs test value
    jb bs_below             ; taken iff sent < test
    nop
bs_below:"""
        prologue = """
    loadb rbx, [r12]
    mfence"""
        return self.builder._load(self.builder._wrap_transient(transient, prologue))

    def _run(self, sent_page_value_unknown_test: int) -> int:
        result = self.machine.run(
            self.program,
            regs={
                "r12": self.sender_page,
                "r13": NULL_POINTER,
                "r9": sent_page_value_unknown_test,
            },
        )
        return result.regs.read("r15") - result.regs.read("r14")

    def _calibrate(self) -> None:
        """Learn the quiet (correctly predicted) ToTE baseline.

        The receiver controls the sender page during calibration, so it
        can run probes with *known* directions and track the mirror."""
        self.machine.write_data(self.sender_page, b"\x00")
        # sent=0, test=0: "0 < 0" is false -> jb not taken, matching the
        # counter's weakly-not-taken reset state: all quiet probes.
        totes = []
        for _ in range(8):
            tote = self._run(0)
            self.mirror.update(False)
            totes.append(tote)
        self._quiet_tote = sorted(totes)[len(totes) // 2]

    def probe(self, test: int) -> ProbeOutcome:
        """Ask "is the sent byte below *test*?" with one probe."""
        predicted = self.mirror.predict()
        tote = self._run(test)
        mispredicted = tote > self._quiet_tote + 4
        below = (not predicted) if mispredicted else predicted
        self.mirror.update(below)
        return ProbeOutcome(test=test, tote=tote, mispredicted=mispredicted, below=below)

    def receive_byte(self) -> int:
        """Binary-search the sent byte in eight probes."""
        lo, hi = 0, 256  # invariant: lo <= sent < hi
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self.probe(mid).below:
                hi = mid
            else:
                lo = mid
        return lo

    def send_byte(self, value: int) -> int:
        """Sender writes *value*; receiver binary-searches it."""
        self.machine.write_data(self.sender_page, bytes([value & 0xFF]))
        return self.receive_byte()

    def transmit(self, payload: bytes) -> ChannelStats:
        """Send *payload* through the log-time channel."""
        start_cycle = self.machine.core.global_cycle
        received = bytes(self.send_byte(value) for value in payload)
        cycles = self.machine.core.global_cycle - start_cycle
        seconds = self.machine.seconds(cycles)
        return ChannelStats(
            payload_length=len(payload),
            received=received,
            error_rate=error_rate(payload, received),
            cycles=cycles,
            seconds=seconds,
            bytes_per_second=len(payload) / seconds if seconds > 0 else 0.0,
        )
