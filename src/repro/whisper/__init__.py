"""Whisper: the transient-execution-timing (TET) side channel.

This package is the paper's contribution, built on the simulator
substrates:

* :mod:`repro.whisper.gadgets` -- the assembly gadget builders (Figure 1a,
  Listing 1, Listing 2 and the ZombieLoad variant).
* :mod:`repro.whisper.analysis` -- the argmax/argmin batch decoders and
  the bimodal ToTE classifier TET-KASLR uses.
* :mod:`repro.whisper.channel` -- TET-CC, the covert channel (§3.2, §4.1).
* :mod:`repro.whisper.attacks` -- TET-MD, TET-ZBL, TET-RSB, TET-KASLR.
* :mod:`repro.whisper.smt_channel` -- the SMT flush covert channel (§4.4).
* :mod:`repro.whisper.taxonomy` -- the side-channel comparison of Table 1.
"""

from repro.whisper.analysis import (
    ArgExtremeDecoder,
    ByteScanResult,
    classify_bimodal,
)
from repro.whisper.attacks.kaslr import KaslrBreakResult, TetKaslr
from repro.whisper.attacks.meltdown import TetMeltdown
from repro.whisper.attacks.spectre_rsb import TetSpectreRsb
from repro.whisper.attacks.spectre_v1 import TetSpectreV1
from repro.whisper.attacks.zombieload import TetZombieload
from repro.whisper.calibration import ChannelCalibration, calibrate_channel
from repro.whisper.channel import ChannelStats, TetCovertChannel
from repro.whisper.exploit import ExploitPlan, KernelExploitPlanner
from repro.whisper.fast_channel import BinarySearchChannel
from repro.whisper.gadgets import GadgetBuilder, Suppression
from repro.whisper.smt_channel import SmtChannelStats, SmtCovertChannel
from repro.whisper.taxonomy import TABLE1_ROWS, AttackClass, render_table1

__all__ = [
    "ArgExtremeDecoder",
    "AttackClass",
    "BinarySearchChannel",
    "ByteScanResult",
    "ChannelCalibration",
    "ChannelStats",
    "ExploitPlan",
    "KernelExploitPlanner",
    "calibrate_channel",
    "GadgetBuilder",
    "KaslrBreakResult",
    "SmtChannelStats",
    "SmtCovertChannel",
    "Suppression",
    "TABLE1_ROWS",
    "TetCovertChannel",
    "TetKaslr",
    "TetMeltdown",
    "TetSpectreRsb",
    "TetSpectreV1",
    "TetZombieload",
    "classify_bimodal",
    "render_table1",
]
