"""TET-CC: the transient-execution-timing covert channel (§3.2, §4.1).

The sender's byte is architecturally visible to the gadget (it is a covert
*channel*, not a leak): for each test value, the Figure 1a gadget opens a
transient window with a faulting null-pointer load and executes a Jcc that
triggers only when the test value matches.  The receiver recovers the byte
from the argmax of the ToTE scan -- no cache probing, no shared-state
flushing, nothing but two ``rdtsc`` reads.

Scans run in one of two modes:

* **serial** (default): every probe runs on this machine, on one
  continuous cycle timeline, exactly as a single-threaded attacker would;
* **pooled**: pass a :class:`~repro.runtime.TrialPool` and each test
  value becomes an independent trial fanned across worker processes,
  with per-trial seeds derived so any worker count decodes identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.whisper.analysis import ArgExtremeDecoder, ByteScanResult, error_rate
from repro.whisper.gadgets import GadgetBuilder, Suppression

#: The paper's faulting address: ``*(char*)(0x0)``.
NULL_POINTER = 0x0


@dataclass
class ChannelStats:
    """Transmission statistics, the §4.1 reporting format."""

    payload_length: int
    received: bytes
    error_rate: float
    cycles: int
    seconds: float
    bytes_per_second: float

    def __str__(self) -> str:
        return (
            f"{self.payload_length} B in {self.seconds * 1e3:.3f} ms simulated "
            f"-> {self.bytes_per_second:,.0f} B/s, error rate {self.error_rate:.2%}"
        )


class TetCovertChannel:
    """The TET covert channel on one machine."""

    def __init__(
        self,
        machine,
        batches: int = 3,
        values: Sequence[int] = range(256),
        suppression: Optional[Suppression] = None,
        statistic: str = "vote",
        pool=None,
    ) -> None:
        self.machine = machine
        self.batches = batches
        self.values = list(values)
        self.builder = GadgetBuilder(machine, suppression=suppression)
        self.program = self.builder.figure1()
        self.sender_page = machine.alloc_data()
        self.decoder = ArgExtremeDecoder("max", statistic=statistic)
        self.pool = pool
        self._warmed = False
        #: Monotone trial counter: every pooled trial across the lifetime
        #: of this channel gets a distinct, order-independent seed index.
        self._trial_counter = 0
        self._spec = None

    def _warm_up(self) -> None:
        """Shed cold-code noise before the first measured scan.

        Warm-up runs advance the cycle timeline (time passes) but leave
        no trace in the PMU bank: counters are restored afterwards, so a
        measured scan's PMU deltas reflect only measured work.
        """
        baseline = self.machine.pmu.snapshot()
        self.machine.run_many(
            self.program,
            [{"r12": self.sender_page, "r13": NULL_POINTER, "r9": 256}] * 4,
        )
        self.machine.pmu.restore(baseline)
        self._warmed = True

    def scan_byte(self) -> ByteScanResult:
        """One full test-value scan of whatever the sender page holds."""
        if self.pool is not None:
            return self._scan_byte_pooled()
        if not self._warmed:
            self._warm_up()
        totes = {test: [] for test in self.values}
        for _ in range(self.batches):
            results = self.machine.run_many(
                self.program,
                [
                    {"r12": self.sender_page, "r13": NULL_POINTER, "r9": test}
                    for test in self.values
                ],
            )
            for test, result in zip(self.values, results):
                start = result.regs.read("r14")
                end = result.regs.read("r15")
                totes[test].append(end - start)
        return self.decoder.decode(totes)

    @classmethod
    def campaign_trials(
        cls,
        spec,
        payload: bytes,
        batches: int = 3,
        values: Sequence[int] = range(256),
        suppression: Optional[str] = None,
        start_index: int = 0,
    ):
        """The campaign adapter: expand a transmission into trial payloads.

        Returns ``(pairs, next_index)`` where *pairs* is a list of
        ``(byte_position, ChannelTrial)`` covering every (payload byte x
        test value) probe, with trial indices allocated monotonically from
        *start_index* -- the same seed-index stream a live pooled channel
        would consume, so campaign replays and ``pool=`` runs agree
        sample for sample.
        """
        from repro.runtime.tasks import ChannelTrial

        pairs = []
        index = start_index
        for position, byte in enumerate(payload):
            for test in values:
                pairs.append(
                    (
                        position,
                        ChannelTrial(
                            spec=spec,
                            byte=byte,
                            test=test,
                            batches=batches,
                            trial_index=index,
                            suppression=suppression,
                        ),
                    )
                )
                index += 1
        return pairs, index

    def _scan_byte_pooled(self) -> ByteScanResult:
        """Fan the scan across the trial pool: one trial per test value.

        Each trial runs on a worker-owned machine reset to a just-booted
        profile, so results are bit-identical at any worker count.  The
        summed per-trial cycle cost is charged to this machine's timeline
        (the simulated work is the same; only the wall clock shrinks).
        """
        from repro.runtime.spec import MachineSpec
        from repro.runtime.tasks import run_channel_trial

        if self._spec is None:
            self._spec = MachineSpec.of(self.machine)
        byte = self.machine.read_data(self.sender_page, 1)[0]
        pairs, self._trial_counter = self.campaign_trials(
            self._spec,
            bytes([byte]),
            batches=self.batches,
            values=self.values,
            suppression=self.builder.suppression.value,
            start_index=self._trial_counter,
        )
        trials = [trial for _, trial in pairs]
        outcomes = self.pool.map(run_channel_trial, trials)
        totes = {
            test: list(outcome.totes)
            for test, outcome in zip(self.values, outcomes)
        }
        self.machine.core.global_cycle += sum(o.cycles for o in outcomes)
        return self.decoder.decode(totes)

    def send_byte(self, value: int) -> ByteScanResult:
        """Sender writes *value*; receiver scans and decodes it."""
        self.machine.write_data(self.sender_page, bytes([value & 0xFF]) + b"\x00" * 7)
        return self.scan_byte()

    def transmit(self, payload: bytes) -> ChannelStats:
        """Send *payload* byte-by-byte; return the §4.1 statistics.

        Warm-up happens before the clock starts: the measured cycle count
        (and hence the B/s figure) covers only the scans themselves.
        """
        if self.pool is None and not self._warmed:
            self._warm_up()
        start_cycle = self.machine.core.global_cycle
        received = bytes(self.send_byte(value).value for value in payload)
        cycles = self.machine.core.global_cycle - start_cycle
        seconds = self.machine.seconds(cycles)
        return ChannelStats(
            payload_length=len(payload),
            received=received,
            error_rate=error_rate(payload, received),
            cycles=cycles,
            seconds=seconds,
            bytes_per_second=len(payload) / seconds if seconds > 0 else 0.0,
        )
