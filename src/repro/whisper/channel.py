"""TET-CC: the transient-execution-timing covert channel (§3.2, §4.1).

The sender's byte is architecturally visible to the gadget (it is a covert
*channel*, not a leak): for each test value, the Figure 1a gadget opens a
transient window with a faulting null-pointer load and executes a Jcc that
triggers only when the test value matches.  The receiver recovers the byte
from the argmax of the ToTE scan -- no cache probing, no shared-state
flushing, nothing but two ``rdtsc`` reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.whisper.analysis import ArgExtremeDecoder, ByteScanResult, error_rate
from repro.whisper.gadgets import GadgetBuilder, Suppression

#: The paper's faulting address: ``*(char*)(0x0)``.
NULL_POINTER = 0x0


@dataclass
class ChannelStats:
    """Transmission statistics, the §4.1 reporting format."""

    payload_length: int
    received: bytes
    error_rate: float
    cycles: int
    seconds: float
    bytes_per_second: float

    def __str__(self) -> str:
        return (
            f"{self.payload_length} B in {self.seconds * 1e3:.3f} ms simulated "
            f"-> {self.bytes_per_second:,.0f} B/s, error rate {self.error_rate:.2%}"
        )


class TetCovertChannel:
    """The TET covert channel on one machine."""

    def __init__(
        self,
        machine,
        batches: int = 3,
        values: Sequence[int] = range(256),
        suppression: Optional[Suppression] = None,
        statistic: str = "vote",
    ) -> None:
        self.machine = machine
        self.batches = batches
        self.values = list(values)
        self.builder = GadgetBuilder(machine, suppression=suppression)
        self.program = self.builder.figure1()
        self.sender_page = machine.alloc_data()
        self.decoder = ArgExtremeDecoder("max", statistic=statistic)
        self._warmed = False

    def _warm_up(self) -> None:
        """Shed cold-code noise before the first measured scan."""
        for _ in range(4):
            self.machine.run(
                self.program,
                regs={"r12": self.sender_page, "r13": NULL_POINTER, "r9": 256},
            )
        self._warmed = True

    def scan_byte(self) -> ByteScanResult:
        """One full test-value scan of whatever the sender page holds."""
        if not self._warmed:
            self._warm_up()
        totes = {test: [] for test in self.values}
        for _ in range(self.batches):
            for test in self.values:
                result = self.machine.run(
                    self.program,
                    regs={"r12": self.sender_page, "r13": NULL_POINTER, "r9": test},
                )
                start = result.regs.read("r14")
                end = result.regs.read("r15")
                totes[test].append(end - start)
        return self.decoder.decode(totes)

    def send_byte(self, value: int) -> ByteScanResult:
        """Sender writes *value*; receiver scans and decodes it."""
        self.machine.write_data(self.sender_page, bytes([value & 0xFF]) + b"\x00" * 7)
        return self.scan_byte()

    def transmit(self, payload: bytes) -> ChannelStats:
        """Send *payload* byte-by-byte; return the §4.1 statistics."""
        start_cycle = self.machine.core.global_cycle
        received = bytes(self.send_byte(value).value for value in payload)
        cycles = self.machine.core.global_cycle - start_cycle
        seconds = self.machine.seconds(cycles)
        return ChannelStats(
            payload_length=len(payload),
            received=received,
            error_rate=error_rate(payload, received),
            cycles=cycles,
            seconds=seconds,
            bytes_per_second=len(payload) / seconds if seconds else float("inf"),
        )
