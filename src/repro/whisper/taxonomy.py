"""Table 1: the side-channel-attack taxonomy.

The paper classifies attacks along three axes (expanded from Binoculars):
direct vs indirect observation, stateful vs stateless channel, and whether
the channel is *transient-only* (information leaves the transient window
without any architectural or contention side effect).  TET's novelty claim
is the last column: it is the first transient-only covert channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class AttackClass:
    """One row of the taxonomy."""

    name: str
    example: str
    direct: bool  # results come from the victim's own micro-operations
    stateful: bool  # a persistent uarch state change carries the signal
    transient_only: bool  # no architectural/contention channel needed
    this_paper: bool = False


TABLE1_ROWS: List[AttackClass] = [
    AttackClass("Cache", "Flush+Reload", direct=True, stateful=True, transient_only=False),
    AttackClass("BPU", "BranchScope", direct=True, stateful=True, transient_only=False),
    AttackClass(
        "Port contention", "SmoTherSpectre", direct=True, stateful=False, transient_only=False
    ),
    AttackClass("AVX power-up", "AVX timing", direct=True, stateful=False, transient_only=False),
    AttackClass("Prefetch/syscall", "EntryBleed", direct=True, stateful=False, transient_only=False),
    AttackClass("TLB", "TLBleed / AnC", direct=False, stateful=True, transient_only=False),
    AttackClass(
        "Page walker contention", "Binoculars", direct=False, stateful=False, transient_only=False
    ),
    AttackClass(
        "TET (direct)",
        "TET-MD, TET-ZBL, TET-RSB",
        direct=True,
        stateful=False,
        transient_only=True,
        this_paper=True,
    ),
    AttackClass(
        "TET (indirect)",
        "TET-KASLR",
        direct=False,
        stateful=False,
        transient_only=True,
        this_paper=True,
    ),
]


def render_table1(rows: List[AttackClass] = TABLE1_ROWS) -> str:
    """Format the taxonomy as the paper's quadrant table."""
    lines = [
        f"{'Type':10} | {'Stateful':32} | {'Stateless':32} | Transient-Only",
        "-" * 100,
    ]
    for direct in (True, False):
        stateful = [r for r in rows if r.direct is direct and r.stateful]
        stateless = [r for r in rows if r.direct is direct and not r.stateful and not r.transient_only]
        transient = [r for r in rows if r.direct is direct and r.transient_only]
        lines.append(
            f"{'Direct' if direct else 'Indirect':10} | "
            f"{', '.join(r.example for r in stateful):32} | "
            f"{', '.join(r.example for r in stateless):32} | "
            f"{', '.join(r.example for r in transient)}"
        )
    return "\n".join(lines)


def transient_only_classes(rows: List[AttackClass] = TABLE1_ROWS) -> List[AttackClass]:
    """The paper's novelty set: the transient-only column."""
    return [row for row in rows if row.transient_only]
