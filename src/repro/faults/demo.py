"""``python -m repro faults demo``: the resilience layer, end to end.

Runs the same small campaign twice under one seeded
:class:`~repro.faults.plan.FaultPlan` -- once serial, once across worker
processes (where ``kill`` faults genuinely ``os._exit`` their worker) --
into separate throwaway stores, then checks the determinism-of-failure
contract on the spot: both runs must produce byte-identical JSON
artifacts, quarantine lists and fault counters.  Exit status 0 iff they
do, so the demo doubles as a CI smoke test.
"""

from __future__ import annotations

import tempfile

from repro.campaign import CampaignRunner, ResultStore, builtin_campaign
from repro.faults.plan import FaultPlan
from repro.faults.resilience import ResiliencePolicy
from repro.runtime import TrialPool

DEFAULT_CAMPAIGN = "ci-smoke"


def run_demo(
    seed: int = 7,
    rate: float = 0.25,
    workers: int = 4,
    retries: int = 2,
    campaign: str = DEFAULT_CAMPAIGN,
    out=print,
) -> int:
    spec = builtin_campaign(campaign)
    plan = FaultPlan.chaos(seed=seed, rate=rate)
    policy = ResiliencePolicy(max_retries=retries)
    out(f"campaign : {spec.name} ({spec.trial_count()} trials)")
    out(f"plan     : chaos(seed={seed}, rate={rate}) -- every trial may "
        f"raise, hang, return garbage, or kill its worker")
    out(f"policy   : {retries} retries per trial, garbage validation on")
    out("")
    runs = {}
    with tempfile.TemporaryDirectory(prefix="repro-faults-demo-") as root:
        for label, count in (("serial", 1), (f"workers={workers}", workers)):
            store = ResultStore(f"{root}/{label}")
            with TrialPool(workers=count, policy=policy) as pool:
                pool.install_faults(plan)
                runner = CampaignRunner(spec, store=store, pool=pool)
                report, stats = runner.run()
                runs[label] = {
                    "artifact": report.to_json(),
                    "quarantine": [
                        (entry.index, entry.attempts, entry.faults, entry.error)
                        for entry in pool.quarantine
                    ],
                    "stats": pool.fault_stats.as_dict(),
                }
                out(f"[{label}] {stats}")
                out(f"[{label}] faults: {pool.fault_stats}")
    serial, pooled = runs.values()
    out("")
    quarantined = serial["quarantine"]
    if quarantined:
        out(f"{len(quarantined)} payloads failed every retry:")
        for index, attempts, faults, error in quarantined:
            out(f"  trial {index}: {error} [{attempts} attempts: "
                f"{','.join(faults)}]")
    else:
        out("every injected fault was absorbed by retries")
    checks = {
        "artifact bytes": serial["artifact"] == pooled["artifact"],
        "quarantine list": serial["quarantine"] == pooled["quarantine"],
        "fault counters": serial["stats"] == pooled["stats"],
    }
    out("")
    for name, same in checks.items():
        out(f"{name:16}: {'identical' if same else 'DIVERGED'}")
    identical = all(checks.values())
    out("")
    out("determinism-of-failure: " + ("HOLDS" if identical else "VIOLATED"))
    return 0 if identical else 1
