"""The hardening half: retry policy, seeded backoff, quarantine records.

These are the knobs and ledgers :class:`~repro.runtime.TrialPool` uses
when a :class:`ResiliencePolicy` is installed.  Everything here is a
pure value or a pure function -- the retry/backoff schedule depends only
on ``(seed, attempt)`` and the quarantine entries only on the payloads
and the fault sequence -- so the resilient serial and resilient pooled
paths cannot drift apart (``tests/test_faults_properties.py`` pins the
purity, ``tests/test_faults_chaos.py`` the cross-path identity).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.runtime.spec import derive_stream
from repro.runtime.tasks import TrialResult

#: Never back off longer than this, whatever the attempt count.
BACKOFF_CAP = 1.0

_SCALE = float(2**64)


def backoff_delay(
    seed: int, attempt: int, base: float = 0.05, cap: float = BACKOFF_CAP
) -> float:
    """The seconds to wait before retrying *attempt* -- a pure function.

    Exponential in the attempt number with a seeded half-width jitter:
    ``min(cap, base * 2**attempt) * (0.5 + u/2)`` where ``u`` is the
    ``(seed, attempt)`` draw.  Purity (no wall clock, no shared RNG) is
    what keeps retry schedules identical across worker counts.
    """
    if base <= 0.0:
        return 0.0
    jitter = derive_stream(seed, attempt, "backoff") / _SCALE
    return min(cap, base * (2.0 ** attempt)) * (0.5 + jitter / 2.0)


@dataclass(frozen=True)
class ResiliencePolicy:
    """How a :class:`~repro.runtime.TrialPool` survives failing trials.

    ``max_retries`` bounds re-execution (a payload gets ``max_retries +
    1`` attempts); ``timeout`` is the per-trial wall deadline enforced by
    the process executor (the serial path honours only simulated hang
    tokens -- it cannot preempt a running trial); ``backoff_*`` seed the
    deterministic exponential backoff; ``validate`` rejects anything
    that is not a :class:`~repro.runtime.tasks.TrialResult` as garbage.
    """

    max_retries: int = 2
    timeout: Optional[float] = None
    backoff_base: float = 0.0
    backoff_cap: float = BACKOFF_CAP
    backoff_seed: int = 0
    validate: bool = True

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")

    @property
    def attempts(self) -> int:
        """Total attempts a payload gets before quarantine."""
        return self.max_retries + 1

    def delay(self, attempt: int) -> float:
        """Backoff before re-dispatching after failed *attempt*."""
        return backoff_delay(
            self.backoff_seed, attempt, self.backoff_base, self.backoff_cap
        )


def trial_result_validator(value) -> bool:
    """The default garbage detector: a real :class:`TrialResult` with
    integer samples and a non-negative cycle count."""
    return (
        isinstance(value, TrialResult)
        and isinstance(value.totes, tuple)
        and all(isinstance(tote, int) for tote in value.totes)
        and isinstance(value.cycles, int)
        and value.cycles >= 0
    )


@dataclass(frozen=True)
class QuarantineEntry:
    """One payload that failed every retry, with its full fault history."""

    #: Position of the payload in the ``map`` call that quarantined it.
    index: int
    payload: object
    attempts: int
    #: Fault category per failed attempt, in attempt order.
    faults: Tuple[str, ...]
    #: The last attempt's failure description.
    error: str


@dataclass
class FaultStats:
    """Counters over one pool's lifetime (deterministic under a plan)."""

    retries: int = 0
    raised: int = 0
    hangs: int = 0
    timeouts: int = 0
    garbage: int = 0
    workers_lost: int = 0
    quarantined: int = 0

    _CATEGORY_FIELDS = {
        "raise": "raised",
        "hang": "hangs",
        "timeout": "timeouts",
        "garbage": "garbage",
        "worker-lost": "workers_lost",
    }

    def note(self, category: str, message: str = "") -> None:
        field = self._CATEGORY_FIELDS.get(category)
        if field is None:
            raise ValueError(f"unknown fault category {category!r}")
        setattr(self, field, getattr(self, field) + 1)
        from repro import telemetry

        if telemetry.enabled():
            telemetry.add(f"faults.{field}")
            # Injected faults announce themselves in their failure text
            # (see repro.faults.inject); everything else is organic.
            # Deterministic under a plan at any worker count.
            telemetry.add(
                "faults.injected" if "injected" in message else "faults.organic"
            )

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def __str__(self) -> str:
        return (
            f"{self.retries} retries ({self.raised} raised, {self.hangs} hung, "
            f"{self.timeouts} timed out, {self.garbage} garbage, "
            f"{self.workers_lost} workers lost), {self.quarantined} quarantined"
        )
