"""Deterministic fault injection and resilient execution (testing layer).

The Whisper campaigns are long statistical sweeps; anything that can run
for hours will eventually meet a dying worker, a wedged trial, or a torn
checkpoint.  This package makes those events *injectable on purpose and
deterministic*, so the hardening in :mod:`repro.runtime.pool` and
:mod:`repro.campaign.runner` is tested the same way the simulator is:
fixed seed in, byte-identical behaviour out.

Two halves:

* **injection** (:mod:`repro.faults.plan`, :mod:`repro.faults.inject`) --
  a seeded :class:`FaultPlan` decides, purely from ``(seed, payload,
  attempt)``, whether a trial raises, hangs, returns garbage, or kills
  its worker, and whether a store record rots on the way to disk.
* **hardening** (:mod:`repro.faults.resilience`) -- the
  :class:`ResiliencePolicy` retry/backoff/timeout/quarantine knobs the
  pool runs under, plus the ledgers it fills.

The determinism-of-failure contract and the full fault taxonomy live in
``docs/FAULTS.md``.  ``python -m repro faults demo`` exercises the whole
stack end to end.
"""

from repro.faults.inject import (
    FaultingFn,
    FaultyStore,
    GarbageResult,
    HangToken,
    InjectedFault,
    SimulatedCrash,
    SimulatedWorkerDeath,
    TornStore,
    lost_worker_message,
)
from repro.faults.plan import (
    STORE_FAULTS,
    TRIAL_FAULTS,
    FaultPlan,
    payload_fingerprint,
)
from repro.faults.resilience import (
    BACKOFF_CAP,
    FaultStats,
    QuarantineEntry,
    ResiliencePolicy,
    backoff_delay,
    trial_result_validator,
)

__all__ = [
    "FaultPlan",
    "TRIAL_FAULTS",
    "STORE_FAULTS",
    "payload_fingerprint",
    "FaultingFn",
    "FaultyStore",
    "TornStore",
    "HangToken",
    "GarbageResult",
    "InjectedFault",
    "SimulatedWorkerDeath",
    "SimulatedCrash",
    "lost_worker_message",
    "ResiliencePolicy",
    "QuarantineEntry",
    "FaultStats",
    "BACKOFF_CAP",
    "backoff_delay",
    "trial_result_validator",
]
