"""Deterministic fault plans: seeded chaos you can replay bit for bit.

A :class:`FaultPlan` decides which trials fail, how, and on which
attempt -- purely as a function of ``(plan seed, payload value,
attempt)``.  The decision never consults scheduling state: the same plan
makes the same trial raise on attempt 0 and hang on attempt 1 whether
the trial runs serially, on worker 3 of 8, or in a resumed campaign.
That is the determinism-of-failure contract: with a fixed plan seed,
quarantine lists, retry counts and report failure sections are
byte-identical across worker counts and resumes
(``tests/test_faults_chaos.py`` enforces it).

Derivation mirrors the trial-seed scheme
(:func:`repro.runtime.spec.derive_stream`): splitmix64 over a
domain-separated root, with the payload folded in through a stable
64-bit fingerprint.  Because each attempt draws a fresh decision, most
faulted trials succeed on retry and only payloads unlucky across every
attempt end up quarantined -- the same long-tail shape real flaky
hardware produces.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.runtime.spec import derive_stream

#: Trial-side fault kinds a plan can inject, in decision order.
TRIAL_FAULTS: Tuple[str, ...] = ("raise", "hang", "garbage", "kill")
#: Store-side fault kinds (applied to records on their way to disk).
STORE_FAULTS: Tuple[str, ...] = ("bitflip", "truncate")

_SCALE = float(2**64)


def payload_fingerprint(payload) -> int:
    """A stable 64-bit fingerprint of a trial payload.

    Computed from ``repr`` of the (frozen, value-semantic) payload, so
    two equal payloads fingerprint identically in every process -- the
    property that keeps fault decisions independent of scheduling and
    object identity.
    """
    digest = hashlib.sha256(repr(payload).encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class FaultPlan:
    """A frozen, picklable recipe for which trials fail and how.

    Rates are per-attempt probabilities; a payload's fate on attempt *n*
    is drawn from the ``(seed, payload, n)`` stream, so retries of a
    faulted trial are independent draws and the expected quarantine size
    is ``sum(rates) ** attempts`` of the campaign.
    """

    seed: int
    raise_rate: float = 0.0
    hang_rate: float = 0.0
    garbage_rate: float = 0.0
    kill_rate: float = 0.0
    bitflip_rate: float = 0.0
    truncate_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "raise_rate", "hang_rate", "garbage_rate", "kill_rate",
            "bitflip_rate", "truncate_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], not {rate}")
        if self.raise_rate + self.hang_rate + self.garbage_rate + self.kill_rate > 1.0:
            raise ValueError("trial fault rates must sum to at most 1")
        if self.bitflip_rate + self.truncate_rate > 1.0:
            raise ValueError("store fault rates must sum to at most 1")

    @classmethod
    def chaos(
        cls, seed: int, rate: float = 0.12, store_rate: float = 0.0
    ) -> "FaultPlan":
        """An even mix of every trial fault, *rate* total per attempt."""
        each = rate / len(TRIAL_FAULTS)
        half_store = store_rate / len(STORE_FAULTS)
        return cls(
            seed=seed,
            raise_rate=each,
            hang_rate=each,
            garbage_rate=each,
            kill_rate=each,
            bitflip_rate=half_store,
            truncate_rate=half_store,
        )

    # -- decisions -------------------------------------------------------------

    def _unit(self, domain: str, fingerprint: int, index: int) -> float:
        """A uniform draw in [0, 1): pure in (seed, domain, fingerprint, index)."""
        return derive_stream(self.seed ^ fingerprint, index, domain) / _SCALE

    def decide(self, payload, attempt: int) -> Optional[str]:
        """Which fault (if any) *payload* suffers on *attempt*.

        A pure function of ``(plan, payload value, attempt)`` -- never of
        the worker, the batch, or what ran before.
        """
        draw = self._unit("trial-fault", payload_fingerprint(payload), attempt)
        edge = 0.0
        for kind, rate in (
            ("raise", self.raise_rate),
            ("hang", self.hang_rate),
            ("garbage", self.garbage_rate),
            ("kill", self.kill_rate),
        ):
            edge += rate
            if draw < edge:
                return kind
        return None

    def decide_store(self, key: str) -> Optional[str]:
        """Which corruption (if any) the record under *key* suffers on write."""
        draw = self._unit("store-fault", payload_fingerprint(key), 0)
        edge = 0.0
        for kind, rate in (
            ("bitflip", self.bitflip_rate),
            ("truncate", self.truncate_rate),
        ):
            edge += rate
            if draw < edge:
                return kind
        return None

    def corruption_offset(self, key: str, span: int) -> int:
        """A deterministic position inside a *span*-byte record to damage."""
        return derive_stream(self.seed, payload_fingerprint(key) & 0xFFFF, "store-offset") % max(span, 1)

    # -- queries ---------------------------------------------------------------

    @property
    def injects_trials(self) -> bool:
        return (self.raise_rate + self.hang_rate + self.garbage_rate
                + self.kill_rate) > 0.0

    @property
    def injects_store(self) -> bool:
        return (self.bitflip_rate + self.truncate_rate) > 0.0
