"""The injection half: make trials and stores fail on purpose.

:class:`FaultingFn` wraps any worker-side trial function; before each
call it consults the plan and either lets the trial run, raises
:class:`InjectedFault`, returns a :class:`HangToken` (a *simulated* hang
-- the pool treats it as a blown deadline without anyone sleeping),
returns :class:`GarbageResult` (rejected by the pool's validator), or
kills its worker outright (``os._exit`` inside a worker process,
:class:`SimulatedWorkerDeath` on the serial path -- both surface as the
``worker-lost`` fault category with identical, deterministic messages).

:class:`FaultyStore` and :class:`TornStore` attack the persistence
layer instead: the former damages record bytes between encoding and
disk (bit-flips, truncation), the latter dies mid-checkpoint leaving a
half-written record -- the shapes a killed writer process produces.
The store's per-record checksums must turn every one of these into a
re-execution, never a silently wrong replay.

Everything here exists purely for testing; production paths never
construct a plan.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterable, List, Tuple

from repro.campaign.store import ResultStore, StoredOutcome
from repro.faults.plan import FaultPlan, payload_fingerprint


class InjectedFault(RuntimeError):
    """The exception an injected ``raise`` fault throws inside a trial."""


class SimulatedWorkerDeath(BaseException):
    """Raised on the serial path where a worker process would have died.

    A ``BaseException`` so that generic ``except Exception`` trial
    wrappers cannot absorb it -- mirroring how a real ``os._exit`` is
    unabsorbable.
    """


class SimulatedCrash(BaseException):
    """The writer process 'dies' mid-checkpoint (:class:`TornStore`)."""


def lost_worker_message(payload, attempt: int) -> str:
    """The canonical ``worker-lost`` failure description.

    Fabricated coordinator-side from the payload value alone, so the
    serial path (which catches :class:`SimulatedWorkerDeath`) and the
    process path (which only sees a dead worker) record byte-identical
    failure text.
    """
    return (
        f"worker lost running payload {payload_fingerprint(payload):#018x} "
        f"(attempt {attempt})"
    )


@dataclass(frozen=True)
class HangToken:
    """What a 'hung' trial returns: a deadline token, not a real stall.

    Real hangs would serialise the test suite behind wall-clock sleeps;
    the token lets the pool exercise its timeout handling in O(1) time
    while staying fully deterministic.
    """

    fingerprint: int
    attempt: int

    #: Duck-typed marker the pool checks without importing this module.
    is_hang_token = True

    def describe(self) -> str:
        return (
            f"injected hang (payload {self.fingerprint:#018x}, "
            f"attempt {self.attempt})"
        )


@dataclass(frozen=True)
class GarbageResult:
    """A corrupted trial result: bytes that are not a ``TrialResult``."""

    junk: bytes


@dataclass(frozen=True)
class FaultingFn:
    """A picklable trial-function wrapper that consults a fault plan.

    Installable into either executor (see ``TrialPool.install_faults``):
    the wrapper travels to worker processes exactly like the function it
    wraps.  ``main_pid`` pins the coordinator's process id so a ``kill``
    fault knows whether it may genuinely ``os._exit`` (inside a worker)
    or must simulate (serial path, where exiting would kill the suite).
    """

    fn: Callable
    plan: FaultPlan
    main_pid: int

    #: Tells the pool's dispatcher to pass the attempt number through.
    wants_attempt = True

    def __call__(self, payload, attempt: int = 0):
        kind = self.plan.decide(payload, attempt)
        if kind is None:
            return self.fn(payload)
        fingerprint = payload_fingerprint(payload)
        if kind == "raise":
            raise InjectedFault(
                f"injected raise (payload {fingerprint:#018x}, attempt {attempt})"
            )
        if kind == "hang":
            return HangToken(fingerprint=fingerprint, attempt=attempt)
        if kind == "garbage":
            return GarbageResult(junk=fingerprint.to_bytes(8, "big"))
        # kind == "kill": die the way a crashed worker dies.
        if os.getpid() != self.main_pid:
            os._exit(43)
        raise SimulatedWorkerDeath(lost_worker_message(payload, attempt))


# -- store-side injection ------------------------------------------------------


class FaultyStore(ResultStore):
    """A :class:`ResultStore` whose writes rot on the way to disk.

    Corruption happens *after* encoding and *after* the in-memory index
    update, modelling media damage: the writing process keeps its
    consistent view and finishes its campaign; the next process to load
    the store must detect the damage via the record checksums and
    re-execute the affected trials.
    """

    def __init__(self, root: str, plan: FaultPlan) -> None:
        super().__init__(root)
        self.plan = plan
        #: ``(key, kind)`` for every record damaged through this store.
        self.corrupted: List[Tuple[str, str]] = []

    def _encode_record(self, key: str, outcome: StoredOutcome) -> str:
        line = super()._encode_record(key, outcome)
        kind = self.plan.decide_store(key)
        if kind == "bitflip":
            position = self.plan.corruption_offset(key, len(line))
            # XOR with 0x02 keeps the damage inside printable ASCII (no
            # accidental newline = no accidental record split).
            flipped = chr(ord(line[position]) ^ 0x02)
            line = line[:position] + flipped + line[position + 1 :]
            self.corrupted.append((key, "bitflip"))
        elif kind == "truncate":
            cut = max(1, len(line) // 3)
            line = line[: len(line) - cut]
            self.corrupted.append((key, "truncate"))
        return line


class TornStore(ResultStore):
    """A store whose writer dies mid-checkpoint.

    Writes ``survive`` whole records, then half of the next record's
    bytes with no newline -- the torn tail a killed process leaves --
    and raises :class:`SimulatedCrash`.  The regression contract
    (``tests/test_faults_chaos.py``): the next run warns, replays every
    intact record, re-executes the tail, and produces artifacts
    byte-identical to a never-interrupted run.
    """

    def __init__(self, root: str, survive: int) -> None:
        super().__init__(root)
        if survive < 0:
            raise ValueError("survive must be non-negative")
        self.survive = survive

    def put_many(self, records: Iterable[Tuple[str, StoredOutcome]]) -> None:
        records = list(records)
        if len(records) <= self.survive:
            self.survive -= len(records)
            super().put_many(records)
            return
        survived = self.survive
        super().put_many(records[:survived])
        victim_key, victim_outcome = records[survived]
        line = super()._encode_record(victim_key, victim_outcome)
        os.makedirs(self.root, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(line[: len(line) // 2])  # no newline: a torn tail
            handle.flush()
            os.fsync(handle.fileno())
        self.survive = 0
        raise SimulatedCrash(
            f"writer died mid-checkpoint after {survived} records "
            f"(torn record {victim_key[:16]})"
        )
