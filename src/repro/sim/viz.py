"""Terminal visualisations for the reproduction's figures.

No plotting dependencies: the paper's Figure 1b (ToTE frequency by test
value, argmax series) and simple bar charts render as text, good enough
to *see* the channel in a terminal or a CI log.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

BAR = "█"
HALF = "▌"


def bar_chart(
    values: Dict[str, float],
    width: int = 48,
    title: str = "",
) -> str:
    """Render labelled values as a horizontal bar chart."""
    if not values:
        return "(no data)"
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = max(values.values()) or 1
    label_width = max(len(str(label)) for label in values)
    for label, value in values.items():
        filled = int(round(width * value / peak))
        lines.append(f"{str(label):>{label_width}} | {BAR * filled} {value:g}")
    return "\n".join(lines)


def tote_scan_plot(
    totes_by_test: Dict[int, List[int]],
    highlight: Optional[int] = None,
    width: int = 40,
) -> str:
    """The Figure 1b upper panel: per-test-value ToTE above the floor.

    Values at the floor render as a thin tick so the peak stands out the
    way the paper's red box does.  *highlight* marks the ground truth.
    """
    if not totes_by_test:
        return "(no data)"
    medians = {
        test: sorted(samples)[len(samples) // 2]
        for test, samples in totes_by_test.items()
    }
    floor = min(medians.values())
    peak = max(medians.values())
    spread = max(1, peak - floor)
    lines = [f"ToTE by test value (floor {floor} cycles, peak +{peak - floor}):"]
    for test in sorted(medians):
        delta = medians[test] - floor
        if delta == 0 and test != highlight:
            continue
        filled = int(round(width * delta / spread))
        bar = BAR * filled if filled else HALF
        marker = "  <-- secret" if test == highlight else ""
        lines.append(f"  {test:#04x} | {bar} +{delta}{marker}")
    if len(lines) == 1:
        lines.append("  (scan is flat -- no channel)")
    return "\n".join(lines)


def argmax_series(
    totes_by_test: Dict[int, List[int]],
    mode: str = "max",
) -> str:
    """The Figure 1b lower panel: the per-batch arg-extreme series."""
    if not totes_by_test:
        return "(no data)"
    batches = len(next(iter(totes_by_test.values())))
    pick = max if mode == "max" else min
    lines = [f"arg{mode} per batch:"]
    for batch in range(batches):
        winner = pick(totes_by_test, key=lambda test: totes_by_test[test][batch])
        lines.append(f"  batch {batch}: {winner:#04x}")
    return "\n".join(lines)


def success_matrix(
    matrix: Dict[str, Dict[str, bool]],
    row_order: Optional[Sequence[str]] = None,
    column_order: Optional[Sequence[str]] = None,
) -> str:
    """Render a ✓/✗ matrix (the Table 2 shape) as aligned text."""
    rows = list(row_order or matrix)
    columns = list(column_order or (next(iter(matrix.values())) if matrix else []))
    if not rows or not columns:
        return "(no data)"
    row_width = max(len(row) for row in rows)
    header = " " * row_width + "  " + "  ".join(f"{c:>10}" for c in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = "  ".join(
            f"{'Y' if matrix[row][column] else 'x':>10}" for column in columns
        )
        lines.append(f"{row:>{row_width}}  {cells}")
    return "\n".join(lines)
