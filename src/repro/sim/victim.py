"""Real victim processes: simulated code on a sibling logical core.

The attack classes default to abstract victim activity
(:meth:`Machine.victim_store` pokes memory and records fills).  For
end-to-end realism, :class:`VictimProcess` instead runs an actual victim
*program* on its own core with its own address space and TLBs -- the
attacker cannot map the victim's pages at all -- while sharing exactly
what SMT siblings share on silicon: physical memory, the cache
hierarchy, and the line fill buffers.  ZombieLoad's leak then crosses a
genuine process boundary.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.isa.program import Program
from repro.kernel.process import Process
from repro.memory.mmu import Mmu
from repro.memory.tlb import SplitTlb
from repro.uarch.core import Core, RunResult

#: A worker loop that keeps handling its secret: read bytes and fold them
#: into a register (a key-schedule / MAC shape).  Deliberately store-free:
#: the line fill buffers then carry the *secret* line, not scratch data.
DEFAULT_VICTIM_SOURCE = """
    mov rcx, r10            ; iterations
victim_work:
    loadb rax, [r12]        ; read a secret byte
    add rbx, rax            ; "process" it
    add r12, 1
    sub rcx, 1
    cmp rcx, 0
    jne victim_work
    hlt
"""


class VictimProcess:
    """A victim with its own process, address space, core and TLBs."""

    def __init__(self, machine, secret: bytes, name: str = "victim") -> None:
        if len(secret) > 64:
            raise ValueError("victim secret must fit one cache line (64 B)")
        self.machine = machine
        self.secret = bytes(secret)
        self.process: Process = machine.kernel.create_process(name)
        # Own MMU: private TLBs and page tables; shared physical memory,
        # caches and fill buffers (the SMT-shared structures).
        self.mmu = Mmu(
            machine.physical,
            machine.hierarchy,
            fill_tlb_on_faulting_access=machine.model.fill_tlb_on_fault,
            dtlb=SplitTlb(f"{name}-DTLB"),
            lfb=machine.mmu.lfb,
        )
        self.mmu.set_address_space(self.process.space)
        self.core = Core(machine.model, self.mmu, thread_id=1)
        # The victim's working set: a secret page and a scratch page.
        self.secret_va = machine.kernel.map_user_memory(self.process, 1)
        self.scratch_va = machine.kernel.map_user_memory(self.process, 1)
        self.mmu.poke_raw_bytes(self.secret_va, self.secret)
        # The victim's wider working set: pages whose lines alias the
        # secret's L1 set.  A victim with any real cache footprint keeps
        # evicting its own hot lines; modelling that footprint is what
        # makes the secret keep flowing through the fill buffers.
        ways = machine.model.l1d.ways
        self._pressure_vas = [
            machine.kernel.map_user_memory(self.process, 1) for _ in range(ways + 1)
        ]
        self._secret_set_offset = self.secret_va & 0xFC0  # line offset in page
        self.program: Program = self._load(DEFAULT_VICTIM_SOURCE)

    def _load(self, source: str) -> Program:
        from repro.isa.assembler import assemble
        from repro.isa.program import INSTRUCTION_SIZE

        probe = assemble(source, base=0)
        pages = (len(probe) * INSTRUCTION_SIZE + 0xFFF) // 0x1000 or 1
        base = self.process.take_code_va(pages)
        self.machine.kernel.map_user_code(self.process, pages, base)
        return assemble(source, base=base)

    def work(self, iterations: int = 8, regs: Optional[Dict[str, int]] = None) -> RunResult:
        """Run one burst of the victim's secret-handling loop.

        The burst first walks the victim's wider working set (which
        aliases the secret's L1 set), evicting the hot secret line, so
        the secret reads that follow refill through the shared LFBs --
        the self-eviction every non-trivial victim exhibits."""
        for va in self._pressure_vas:
            self.mmu.data_access(
                va + self._secret_set_offset, user=True, thread_id=1,
                now=self.core.global_cycle,
            )
        initial = {
            "r10": min(iterations, len(self.secret)),
            "r12": self.secret_va,
            "r13": self.scratch_va,
        }
        if regs:
            initial.update(regs)
        return self.core.run(self.program, regs=initial)

    def secret_is_unreachable_by(self, attacker_process) -> bool:
        """The isolation check: the attacker cannot map the secret."""
        return attacker_process.space.lookup(self.secret_va) is None
