"""Trace analysis: frontend delivery traces and transient CFGs.

Figure 3 of the paper illustrates the frontend resteer inside a transient
window (DSB delivery collapsing to MITE after the clear); Figure 4 draws
the control-flow graph of the transient execution with the trigger and
not-trigger paths.  Both are derived here from a run's uop records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import networkx as nx

from repro.uarch.core import RunResult
from repro.uarch.uop import UopRecord


@dataclass(frozen=True)
class FrontendTraceEntry:
    """One dispatched instruction as the frontend saw it."""

    cycle: int
    pc: int
    mnemonic: str
    source: str  # dsb | mite | ms
    transient: bool
    squashed: bool


def frontend_trace(result: RunResult) -> List[FrontendTraceEntry]:
    """Per-instruction frontend delivery trace (requires record_trace)."""
    if result.records is None:
        raise ValueError("run was not traced; pass record_trace=True")
    return [
        FrontendTraceEntry(
            cycle=record.dispatch_cycle,
            pc=record.pc,
            mnemonic=str(record.instruction),
            source=record.source,
            transient=record.transient,
            squashed=record.squashed,
        )
        for record in result.records
    ]


def delivery_source_histogram(result: RunResult, transient_only: bool = False) -> Dict[str, int]:
    """Uops delivered per frontend source (the IDQ story of Table 3)."""
    if result.records is None:
        raise ValueError("run was not traced; pass record_trace=True")
    histogram: Dict[str, int] = {"dsb": 0, "mite": 0, "ms": 0}
    for record in result.records:
        if transient_only and not record.transient:
            continue
        histogram[record.source] += record.uop_count
    return histogram


def control_flow_graph(result: RunResult) -> nx.DiGraph:
    """The executed control-flow graph, annotated like Figure 4.

    Nodes are instruction addresses with ``mnemonic`` and per-path uop
    counters (``committed_visits`` / ``transient_visits``); edges carry
    ``committed`` / ``transient`` traversal counts.  Squashed records are
    the transient path.
    """
    if result.records is None:
        raise ValueError("run was not traced; pass record_trace=True")
    graph = nx.DiGraph()
    previous: Optional[UopRecord] = None
    for record in result.records:
        if not graph.has_node(record.pc):
            graph.add_node(
                record.pc,
                mnemonic=str(record.instruction),
                committed_visits=0,
                transient_visits=0,
            )
        key = "transient_visits" if record.squashed or record.transient else "committed_visits"
        graph.nodes[record.pc][key] += 1
        if previous is not None:
            edge = (previous.pc, record.pc)
            if not graph.has_edge(*edge):
                graph.add_edge(*edge, committed=0, transient=0)
            edge_key = "transient" if record.squashed or record.transient else "committed"
            graph.edges[edge][edge_key] += 1
        previous = record
    return graph


def transient_uop_count(result: RunResult) -> int:
    """Uops issued on squashed paths (Figure 4's UOPS_ISSUED.ANY story)."""
    if result.records is None:
        raise ValueError("run was not traced; pass record_trace=True")
    return sum(record.uop_count for record in result.records if record.squashed)


def render_pipeline(result: RunResult, width: int = 72) -> str:
    """An ASCII pipeline diagram of a traced run (gem5-pipeview style).

    One row per instruction: ``D`` dispatch, ``x`` executing, ``R``
    retire, ``~`` in flight, dots elsewhere.  Squashed (transient) rows
    are marked with ``!``.  Long runs are compressed to *width* columns.
    """
    if result.records is None:
        raise ValueError("run was not traced; pass record_trace=True")
    if not result.records:
        return "(empty run)"
    t0 = result.start_cycle
    t1 = max(
        max(r.ready_cycle for r in result.records),
        max((r.retire_cycle or 0) for r in result.records),
        result.end_cycle,
    )
    span = max(1, t1 - t0)
    scale = max(1, (span + width - 1) // width)

    def column(cycle: int) -> int:
        return min(width - 1, (cycle - t0) // scale)

    lines = [
        f"cycles {t0}..{t1} ({span} total, {scale} per column); "
        f"D=dispatch x=execute R=retire !=squashed"
    ]
    for record in result.records:
        row = ["."] * width
        start_col = column(record.start_cycle)
        ready_col = column(record.ready_cycle)
        for col in range(start_col, ready_col + 1):
            row[col] = "x"
        row[column(record.dispatch_cycle)] = "D"
        if record.retire_cycle is not None:
            row[column(record.retire_cycle)] = "R"
        marker = "!" if record.squashed else " "
        label = str(record.instruction)[:24]
        lines.append(f"{record.seq:3d}{marker}{label:24} |{''.join(row)}|")
    return "\n".join(lines)


def path_summary(result: RunResult) -> Dict[str, int]:
    """Counts Figure 4 reports: issued, squashed, redirects, flushes."""
    if result.records is None:
        raise ValueError("run was not traced; pass record_trace=True")
    return {
        "uops_issued": sum(record.uop_count for record in result.records),
        "uops_squashed": transient_uop_count(result),
        "redirects": len(result.events.redirects),
        "flushes": len(result.events.flushes),
        "nested_redirects": sum(
            1 for event in result.events.redirects if event.nested_in_transient
        ),
    }
