"""ToTE measurement conventions.

Gadgets in this project follow one convention, mirroring the paper's
``start_time = rdtsc(); ...; spend_time = rdtsc() - start_time``:

* the first ``rdtsc`` result is parked in ``r14``;
* the second ``rdtsc`` result is parked in ``r15``;
* the program ends with ``hlt``.

``tote_from_result`` recovers the elapsed time-of-transient-execution from
the final architectural registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean, median
from typing import Dict, List, Optional

from repro.isa.program import Program
from repro.uarch.core import RunResult

START_REG = "r14"
END_REG = "r15"


@dataclass(frozen=True)
class ToteSample:
    """One timed execution of a transient gadget."""

    tote: int
    start_cycle: int
    end_cycle: int


def tote_from_result(result: RunResult) -> ToteSample:
    """Extract the ToTE from a run that followed the r14/r15 convention."""
    start = result.regs.read(START_REG)
    end = result.regs.read(END_REG)
    if end < start:
        raise ValueError(
            f"gadget produced end timestamp {end} before start {start}; "
            f"did it follow the r14/r15 convention?"
        )
    return ToteSample(tote=end - start, start_cycle=start, end_cycle=end)


def measure_tote(
    machine,
    program: Program,
    regs: Optional[Dict[str, int]] = None,
    repeats: int = 1,
) -> List[ToteSample]:
    """Run *program* *repeats* times and collect the ToTE samples."""
    samples = []
    for _ in range(repeats):
        result = machine.run(program, regs=dict(regs or {}))
        samples.append(tote_from_result(result))
    return samples


def summarize(samples: List[ToteSample]) -> Dict[str, float]:
    """Mean/median/min/max of a sample list (frequency-plot statistics)."""
    totes = [sample.tote for sample in samples]
    return {
        "mean": mean(totes),
        "median": median(totes),
        "min": min(totes),
        "max": max(totes),
        "n": len(totes),
    }
