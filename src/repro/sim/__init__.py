"""Simulation harness: a whole machine, timing helpers and trace analysis.

* :mod:`repro.sim.machine` -- :class:`Machine` wires a CPU model, memory
  subsystem, kernel and core together and loads/runs programs.
* :mod:`repro.sim.timing` -- ToTE measurement conventions and statistics.
* :mod:`repro.sim.tracing` -- frontend traces (Figure 3) and transient
  control-flow graphs (Figure 4) from run records.
"""

from repro.sim.machine import Machine
from repro.sim.timing import ToteSample, measure_tote, tote_from_result
from repro.sim.tracing import control_flow_graph, frontend_trace
from repro.sim.victim import VictimProcess

__all__ = [
    "Machine",
    "ToteSample",
    "VictimProcess",
    "control_flow_graph",
    "frontend_trace",
    "measure_tote",
    "tote_from_result",
]
