"""The :class:`Machine`: one simulated computer, ready to run gadgets.

A machine is a CPU model + memory subsystem + booted kernel + one
(attacker) process.  It provides the primitives every attack in the paper
assumes: loading and running code, allocating user memory, registering a
SIGSEGV handler, evicting the TLB, and making a victim touch kernel data
so it is cache-hot.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.isa.assembler import assemble
from repro.isa.program import INSTRUCTION_SIZE, Program
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.memory.cache import CacheHierarchy
from repro.memory.mmu import Mmu
from repro.memory.paging import PageSize
from repro.memory.physical import PhysicalMemory
from repro.memory.tlb import SplitTlb
from repro.uarch.config import CpuModel, cpu_model
from repro.uarch.core import Core, RunResult
from repro.uarch.smt import SmtCore

PAGE = int(PageSize.SIZE_4K)


class Machine:
    """A full simulated machine with one attacker process installed."""

    def __init__(
        self,
        model: Union[str, CpuModel] = "i7-7700",
        kaslr: bool = True,
        kpti: bool = False,
        flare: bool = False,
        fgkaslr: bool = False,
        seed: Optional[int] = None,
        flare_coverage: str = "probe-offsets",
        secret: Optional[bytes] = None,
        container: bool = False,
        noise_amplitude: int = 0,
    ) -> None:
        self.model = cpu_model(model) if isinstance(model, str) else model
        #: The resolved constructor arguments, kept so a picklable
        #: :class:`repro.runtime.MachineSpec` can be recovered from a live
        #: machine (``MachineSpec.of(machine)``) and rebuilt in a worker.
        self.init_args = dict(
            model=self.model.name,
            kaslr=kaslr,
            kpti=kpti,
            flare=flare,
            fgkaslr=fgkaslr,
            seed=seed,
            flare_coverage=flare_coverage,
            secret=secret,
            container=container,
            noise_amplitude=noise_amplitude,
        )
        self.physical = PhysicalMemory()
        l1d, l1i, l2, llc = self.model.cache_geometries()
        self.hierarchy = CacheHierarchy(l1d, l1i, l2, llc, dram_latency=self.model.dram_latency)
        kernel_args = dict(
            kaslr=kaslr, kpti=kpti, flare=flare, fgkaslr=fgkaslr,
            seed=seed, flare_coverage=flare_coverage,
        )
        if secret is not None:
            kernel_args["secret"] = secret
        self.kernel = Kernel(self.physical, **kernel_args)
        self.mmu = Mmu(
            self.physical,
            self.hierarchy,
            fill_tlb_on_faulting_access=self.model.fill_tlb_on_fault,
            dtlb=SplitTlb(
                "DTLB",
                entries_4k=self.model.dtlb_entries_4k,
                ways_4k=4,
                entries_2m=self.model.dtlb_entries_2m,
                ways_2m=4,
            ),
        )
        self._noise_seed = (seed or 0) ^ 0x5EED
        if noise_amplitude:
            # Ambient OS noise: seeded, so noisy experiments still replay.
            self.mmu.set_noise(noise_amplitude, seed=self._noise_seed)
        self.process: Process = self.kernel.create_process("attacker", container=container)
        self.mmu.set_address_space(self.process.space)
        self.core = Core(self.model, self.mmu)
        self._smt: Optional[SmtCore] = None
        self._eviction_pages_4k: list = []
        self._eviction_pages_2m: list = []

    # -- program loading -------------------------------------------------------

    def load_program(self, source: Union[str, Program], base: Optional[int] = None) -> Program:
        """Assemble (if needed) and map a program into the process.

        Code pages are mapped user-executable at *base* (or the next free
        code address).  Returns the bound :class:`Program`.
        """
        if isinstance(source, Program):
            program = source
            base = program.base
            pages = (len(program) * INSTRUCTION_SIZE + PAGE - 1) // PAGE or 1
        else:
            if base is None:
                # Reserve after assembling once to know the size.
                probe = assemble(source, base=0)
                pages = (len(probe) * INSTRUCTION_SIZE + PAGE - 1) // PAGE or 1
                base = self.process.take_code_va(pages)
            else:
                probe = assemble(source, base=base)
                pages = (len(probe) * INSTRUCTION_SIZE + PAGE - 1) // PAGE or 1
            program = assemble(source, base=base)
        self.kernel.map_user_code(self.process, pages, base & ~(PAGE - 1))
        return program

    def run(
        self,
        program: Program,
        regs: Optional[Dict[str, int]] = None,
        entry: Optional[int] = None,
        record_trace: bool = False,
        max_instructions: int = 200_000,
    ) -> RunResult:
        """Run *program* on the attacker core (user mode)."""
        handler_pc = getattr(program, "signal_handler_pc", None)
        if handler_pc is not None:
            self.core.signal_handler_pc = handler_pc
        return self.core.run(
            program,
            regs=regs,
            entry=entry,
            user=True,
            record_trace=record_trace,
            max_instructions=max_instructions,
        )

    def run_many(
        self,
        program: Program,
        reg_sets: Sequence[Dict[str, int]],
        entry: Optional[int] = None,
        max_instructions: int = 200_000,
    ) -> List[RunResult]:
        """Run *program* once per register set, in order.

        The batched single-process trial primitive: the signal handler is
        installed once, then the core runs back-to-back on one continuing
        cycle timeline -- exactly equivalent to calling :meth:`run` in a
        loop, minus the per-call setup.
        """
        handler_pc = getattr(program, "signal_handler_pc", None)
        if handler_pc is not None:
            self.core.signal_handler_pc = handler_pc
        return [
            self.core.run(
                program,
                regs=regs,
                entry=entry,
                user=True,
                max_instructions=max_instructions,
            )
            for regs in reg_sets
        ]

    def reset_uarch(self, noise_seed: Optional[int] = None) -> None:
        """Flush every timing-relevant structure back to boot state.

        Caches, TLBs, LFBs, paging-structure cache, branch predictor,
        frontend (DSB), PMU counters, cycle counter, signal handler --
        everything microarchitectural.  Architectural state (kernel, page
        tables, mapped programs, memory contents) survives, so a pooled
        worker can reuse one machine across independent trials instead of
        re-booting a kernel per trial.  *noise_seed* reseeds the ambient
        noise stream (defaults to the boot-time seed), giving each trial
        a jitter sequence that depends only on the seed handed to it.
        """
        self.core.reset_uarch()
        self.mmu.reset_uarch(
            noise_seed=self._noise_seed if noise_seed is None else noise_seed
        )
        self._smt = None

    # -- memory helpers -----------------------------------------------------------

    def alloc_data(self, pages: int = 1) -> int:
        """Map fresh user data pages; return the base virtual address."""
        return self.kernel.map_user_memory(self.process, pages)

    def write_data(self, va: int, data: bytes) -> None:
        """Architecturally write *data* at user address *va* (setup poke)."""
        self.mmu.poke_raw_bytes(va, data)

    def read_data(self, va: int, length: int) -> bytes:
        """Architecturally read *length* bytes at *va*."""
        data = self.mmu.peek_raw_bytes(va, length)
        if data is None:
            raise ValueError(f"read of unmapped address {va:#x}")
        return data

    # -- attacker primitives ---------------------------------------------------------

    def set_signal_handler(self, program: Program, label: str) -> None:
        """Register the instruction at *label* as the SIGSEGV landing pad.

        The handler is also remembered on *program* so :meth:`run`
        re-installs it automatically -- each gadget carries its own
        ``sigsetjmp`` recovery point, as the real attacks do.
        """
        pc = program.label_address(label)
        self.process.register_signal_handler("SIGSEGV", pc)
        program.signal_handler_pc = pc
        self.core.signal_handler_pc = pc

    def clear_signal_handler(self) -> None:
        """Remove the SIGSEGV handler."""
        self.core.signal_handler_pc = None

    def flush_tlb(self, charge_cycles: bool = True) -> None:
        """Evict the whole TLB (the unprivileged eviction-set primitive the
        paper assumes: "the TLB can be evicted or invalid[ated] by other
        methods", §4.2).  Global entries are evicted too -- eviction works
        by conflict, not by privilege.

        With ``charge_cycles`` the attacker pays for touching one page per
        TLB entry, so KASLR break times include the eviction work."""
        self.mmu.flush_tlb(keep_global=False)
        if charge_cycles:
            entries = self.model.dtlb_entries_4k + self.model.dtlb_entries_2m
            self.core.global_cycle += entries * (self.model.l2.latency + 4)

    def thrash_l1d(self) -> None:
        """Sweep an L1D-sized working set through the data cache.

        On SMT siblings the L1D is shared: an attacker thrashing it
        evicts the victim's hot lines, forcing the victim's next accesses
        to refill -- and refills are what the line fill buffers retain
        (the ZombieLoad feeding technique)."""
        if not getattr(self, "_l1_thrash_pages", None):
            pages = 2 * (self.model.l1d.size_bytes // PAGE or 1)
            self._l1_thrash_pages = [
                self.kernel.map_user_memory(self.process, 1) for _ in range(pages)
            ]
        spent = 0
        now = self.core.global_cycle
        for va in self._l1_thrash_pages:
            for offset in range(0, PAGE, 64):
                access = self.mmu.data_access(va + offset, now=now + spent)
                spent += access.latency
        self.core.global_cycle += spent

    def build_tlb_eviction_sets(self) -> None:
        """Allocate the eviction working set: enough distinct 4 KiB and
        2 MiB pages to conflict every way of every TLB set (x2 margin)."""
        from repro.memory.paging import PageSize

        if self._eviction_pages_4k:
            return
        count_4k = 2 * self.model.dtlb_entries_4k
        for _ in range(count_4k):
            self._eviction_pages_4k.append(self.kernel.map_user_memory(self.process, 1))
        count_2m = 2 * self.model.dtlb_entries_2m
        for _ in range(count_2m):
            self._eviction_pages_2m.append(
                self.kernel.map_user_memory(self.process, 1, size=PageSize.SIZE_2M)
            )

    def evict_tlb_realistic(self) -> int:
        """Evict the TLBs the way an unprivileged attacker actually can:
        by touching an eviction working set until every victim entry has
        been conflicted out.  Charges every access's true latency and
        returns the cycles spent -- this is the cost the paper's 0.88 s
        KASLR break is mostly made of."""
        self.build_tlb_eviction_sets()
        spent = 0
        now = self.core.global_cycle
        for va in self._eviction_pages_4k + self._eviction_pages_2m:
            access = self.mmu.data_access(va, user=True, now=now + spent)
            spent += access.latency
        self.core.global_cycle += spent
        return spent

    def syscall_roundtrip(self) -> None:
        """Enter and leave the kernel (two CR3 writes).

        Non-global TLB entries are flushed on the way, global ones (the
        KPTI trampoline) survive -- the asymmetry the FLARE bypass of
        §4.5 measures."""
        self.mmu.set_address_space(self.kernel.kernel_space)
        self.mmu.set_address_space(self.process.space)

    def do_syscall(self) -> None:
        """Issue a (no-op) syscall: the kernel entry path *executes the
        KPTI trampoline*, refilling its TLB entry -- the residue
        EntryBleed measures.  Charges the syscall's cycles."""
        trampoline = self.kernel.layout.trampoline_va
        if self.process.space.lookup(trampoline) is not None:
            # Kernel entry touches the trampoline page (supervisor mode).
            self.mmu.data_access(trampoline, user=False, now=self.core.global_cycle)
        self.syscall_roundtrip()
        self.core.global_cycle += 400  # entry + exit path

    def flush_caches(self) -> None:
        """Empty the cache hierarchy (cold-cache experiment setup)."""
        self.hierarchy.flush_all()

    # -- victim / kernel activity ------------------------------------------------------

    def victim_touch(self, va: int, thread_id: int = 1) -> None:
        """Simulate privileged/victim code touching *va* (warms caches,
        fills LFBs) without running attacker-visible instructions."""
        space = self.mmu.space
        switched = False
        if self.process.space.lookup(va) is None and self.kernel.kernel_space.lookup(va):
            self.mmu.space = self.kernel.kernel_space
            switched = True
        self.mmu.data_access(va, write=False, user=False, thread_id=thread_id)
        if switched:
            self.mmu.space = space

    def victim_store(self, va: int, data: bytes, thread_id: int = 1) -> None:
        """Victim writes *data* at *va* through the hierarchy.

        Stores allocate fill buffers (read-for-ownership) even on cache
        hits, so every round of victim activity refreshes the stale data
        ZombieLoad samples."""
        self.mmu.poke_raw_bytes(va, data)
        for offset in range(0, len(data), 64):
            self.mmu.data_access(va + offset, write=False, user=False, thread_id=thread_id)
            paddr = self.mmu.translate_peek(va + offset)
            if paddr is not None:
                line = paddr & ~63
                self.mmu.lfb.record_fill(
                    line, self.physical.read_bytes(line, 64), thread_id
                )

    def warm_kernel_secret(self) -> None:
        """The victim syscall path touches the kernel secret (Meltdown's
        precondition: the target line must be in the cache)."""
        for offset in range(0, max(64, len(self.kernel.secret)), 64):
            self.victim_touch(self.kernel.secret_va + offset)

    # -- conveniences ---------------------------------------------------------------

    def seconds(self, cycles: int) -> float:
        """Simulated wall-clock seconds for *cycles* on this model."""
        return self.model.seconds(cycles)

    def smt(self) -> SmtCore:
        """The SMT view of this machine (Trojan = thread 0, spy = thread 1)."""
        if self._smt is None:
            self._smt = SmtCore(self.model, self.mmu)
        return self._smt

    @property
    def pmu(self):
        """The core's PMU counter bank."""
        return self.core.pmu
