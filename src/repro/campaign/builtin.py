"""Built-in campaign definitions for the paper's headline experiments.

Each factory returns a fresh :class:`CampaignSpec` value; specs are pure
data, so calling a factory twice yields equal specs with equal digests.
The seeds match the corresponding benchmarks (``benchmarks/test_*``), so
a campaign's decoded artefacts agree with the bench harness's.

=================  ==========================================================
name               campaign
=================  ==========================================================
``e3-matrix``      Table 2's environment matrix: TET-CC and TET-KASLR across
                   the paper's CPU grid (Intel Sky Lake through Raptor Lake,
                   plus AMD Zen 3, where the KASLR oracle goes blind)
``e8-throughput``  §4.1 covert-channel throughput: a 24-byte random payload
                   through TET-CC on the i7-7700
``e9-kaslr``       §4.5 KASLR break: the 512-slot KPTI trampoline sweep on
                   the i9-10980XE, n=3 boots (the paper's 0.8829 s figure)
``e11-detect``     the detection arms race at campaign scale: every
                   attack/benign scenario of :mod:`repro.defend.scenarios`
                   crossed with a quiet and a noisy victim, each cell a
                   stream of observation windows for the detector
``ci-smoke``       a seconds-sized channel campaign for cache smoke tests
=================  ==========================================================
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List

from repro.campaign.spec import CampaignSpec, channel_cell, detect_cell, kaslr_cell
from repro.runtime.spec import MachineSpec

#: The CPU grid of Table 2 (the CLI ``matrix`` default).
MATRIX_CPUS = ("i7-6700", "i7-7700", "i9-10980XE", "i9-13900K", "ryzen-5600G")


def e3_environment_matrix() -> CampaignSpec:
    """Table 2 as a campaign: channel + KASLR sweep per CPU model."""
    cells = []
    for cpu in MATRIX_CPUS:
        machine = MachineSpec(model=cpu, seed=1)
        cells.append(channel_cell(machine, payload=b"T2", batches=3))
        cells.append(kaslr_cell(machine, strategy="slot-scan"))
    return CampaignSpec(name="e3-matrix", cells=tuple(cells))


def e8_throughput() -> CampaignSpec:
    """§4.1 throughput: the bench's 24 random bytes through TET-CC."""
    payload = bytes(random.Random(414).randrange(256) for _ in range(24))
    machine = MachineSpec(model="i7-7700", seed=411)
    return CampaignSpec(
        name="e8-throughput",
        cells=(channel_cell(machine, payload=payload, batches=3),),
    )


def e9_kaslr_break() -> CampaignSpec:
    """§4.5 KPTI break, n=3 boots (seeds 452..454, as in the E9 bench)."""
    cells = tuple(
        kaslr_cell(
            MachineSpec(model="i9-10980XE", seed=452 + boot, kpti=True),
            strategy="kpti-trampoline",
        )
        for boot in range(3)
    )
    return CampaignSpec(name="e9-kaslr", cells=cells)


def e11_detect() -> CampaignSpec:
    """Bench E11 as a campaign: the full scenario mix x victim noise.

    One cell per (scenario, noise) pair, eight observation windows each.
    Seeds are disjoint from the calibration campaign's
    (:func:`repro.defend.calibrate.calibration_campaign`) -- the detector
    is always evaluated on traffic it was not fitted on.
    """
    from repro.defend.scenarios import scenario_names

    cells = []
    for index, scenario in enumerate(scenario_names()):
        for noise in (0, 2):
            machine = MachineSpec(
                model="i7-7700", seed=1100 + index, noise_amplitude=noise
            )
            cells.append(detect_cell(machine, scenario=scenario, trials=8))
    return CampaignSpec(name="e11-detect", cells=tuple(cells))


def ci_smoke() -> CampaignSpec:
    """A 32-trial channel campaign: two bytes over a 16-value scan."""
    machine = MachineSpec(model="i7-7700", seed=7)
    return CampaignSpec(
        name="ci-smoke",
        cells=(
            channel_cell(
                machine, payload=b"\x03\x0b", batches=2, values=range(16)
            ),
        ),
    )


BUILTIN_CAMPAIGNS: Dict[str, Callable[[], CampaignSpec]] = {
    "e3-matrix": e3_environment_matrix,
    "e8-throughput": e8_throughput,
    "e9-kaslr": e9_kaslr_break,
    "e11-detect": e11_detect,
    "ci-smoke": ci_smoke,
}


def builtin_campaign(name: str) -> CampaignSpec:
    """Look up a built-in campaign by name."""
    try:
        factory = BUILTIN_CAMPAIGNS[name]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_CAMPAIGNS))
        raise KeyError(f"unknown campaign {name!r}; built-ins: {known}") from None
    return factory()


def builtin_names() -> List[str]:
    return sorted(BUILTIN_CAMPAIGNS)
