"""repro.campaign -- declarative, cached, resumable sampling campaigns.

Every paper artefact is a sampling campaign: a grid of (machine x attack
x parameters) trials whose aggregate drives a decoder or a report.  This
package makes that shape first-class:

* :class:`CampaignSpec` -- a frozen grid description that expands
  deterministically into the trial list (``spec.py``);
* :class:`ResultStore` -- a content-addressed JSONL store under
  ``.campaigns/``; re-running a campaign replays cached trials for free
  and executes only the delta (``store.py``);
* :class:`CampaignRunner` -- a resumable executor that checkpoints after
  every batch and survives interruption mid-sweep (``runner.py``);
* :class:`CampaignReport` -- deterministic text + JSON artifacts built
  purely from trial results (``report.py``);
* built-in definitions for the E3 environment matrix, E8 throughput and
  the E9 KASLR break (``builtin.py``).

See ``docs/CAMPAIGN.md`` for the spec format, store layout, cache-key
rules and resume semantics.  From the CLI:
``python -m repro campaign run e9-kaslr --workers 4``.
"""

from repro.campaign.builtin import (
    BUILTIN_CAMPAIGNS,
    builtin_campaign,
    builtin_names,
)
from repro.campaign.report import (
    REPORT_SCHEMA_VERSION,
    CampaignReport,
    build_report,
)
from repro.campaign.runner import (
    CampaignAborted,
    CampaignRunner,
    CampaignStatus,
    RunStats,
)
from repro.campaign.spec import (
    CampaignCell,
    CampaignSpec,
    Shard,
    TrialRef,
    channel_cell,
    detect_cell,
    freeze_params,
    kaslr_cell,
)
from repro.campaign.store import (
    ResultStore,
    StoredOutcome,
    canonical_encode,
    spec_digest,
    trial_key,
)

__all__ = [
    "BUILTIN_CAMPAIGNS",
    "CampaignAborted",
    "CampaignCell",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStatus",
    "REPORT_SCHEMA_VERSION",
    "ResultStore",
    "RunStats",
    "Shard",
    "StoredOutcome",
    "TrialRef",
    "build_report",
    "builtin_campaign",
    "builtin_names",
    "canonical_encode",
    "channel_cell",
    "detect_cell",
    "freeze_params",
    "kaslr_cell",
    "spec_digest",
    "trial_key",
]
