"""The campaign runner: replay what is cached, execute only the delta.

``CampaignRunner.run()`` expands the spec into its deterministic trial
list, partitions it against the content-addressed store, fans the
pending trials across a :class:`~repro.runtime.TrialPool` in fixed-size
batches, and **checkpoints after every completed batch** by appending the
batch's results to the store.  Interrupt it anywhere -- Ctrl-C, a killed
CI job, a crashed host -- and the next ``run()`` picks up from the last
completed batch; the finished report is bit-identical to an
uninterrupted run because every trial's result is a pure function of its
payload.

The runner never writes wall-clock or provenance into the report; those
live in :class:`RunStats` (``executed`` counts live trials via
``TrialPool.trials_executed``, ``cached`` counts store replays).

Under a :class:`~repro.faults.resilience.ResiliencePolicy` the runner
degrades gracefully instead of dying: trials that fail every retry are
checkpointed as :class:`~repro.runtime.tasks.TrialFailure` records under
the same content address their success would have used -- so resume
replays failures rather than re-poisoning itself -- and the report grows
a failures section.  ``max_failures`` bounds the damage: once the
running failure count exceeds it, the runner checkpoints what it has and
raises :class:`CampaignAborted`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro import telemetry
from repro.campaign.report import CampaignReport, build_report
from repro.campaign.spec import CampaignSpec, Shard, TrialRef
from repro.campaign.store import ResultStore, StoredOutcome, trial_key
from repro.faults.resilience import ResiliencePolicy
from repro.runtime.pool import TrialPool
from repro.runtime.tasks import TrialFailure, run_trial

DEFAULT_BATCH_SIZE = 128


class CampaignAborted(RuntimeError):
    """Too many trials failed (see ``max_failures``).

    Raised *after* the current batch's checkpoint, so everything
    completed -- successes and structured failures alike -- is durable
    and a later run resumes from it.
    """

    def __init__(self, message: str, failures: int) -> None:
        super().__init__(message)
        self.failures = failures


@dataclass
class CampaignStatus:
    """How much of a campaign the store already holds."""

    name: str
    total: int
    cached: int

    @property
    def pending(self) -> int:
        return self.total - self.cached

    @property
    def hit_rate(self) -> float:
        return self.cached / self.total if self.total else 1.0

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.cached}/{self.total} trials cached "
            f"({self.hit_rate:.1%}), {self.pending} pending"
        )


@dataclass
class RunStats:
    """Execution provenance for one ``run()`` (never part of the artifact)."""

    total: int
    cached: int
    executed: int
    batches: int
    wall_seconds: float
    #: Trials whose outcome is a :class:`TrialFailure` (replayed or fresh).
    failures: int = 0

    @property
    def hit_rate(self) -> float:
        return self.cached / self.total if self.total else 1.0

    def __str__(self) -> str:
        text = (
            f"{self.total} trials: {self.cached} cached ({self.hit_rate:.1%}), "
            f"{self.executed} executed in {self.batches} batches, "
            f"{self.wall_seconds:.2f} s wall"
        )
        if self.failures:
            text += f", {self.failures} failures quarantined"
        return text


def _live_batch_counts() -> Dict:
    """Live lockstep-batching counts for observer/stream updates.

    Read from the coordinator registry after the checkpoint, so the
    worker batches of the map that just finished are already merged.
    Cumulative over the run (the registry is), which is exactly what the
    progress line and heartbeats want.
    """
    registry = telemetry.metrics_registry()
    snapshot = registry.snapshot()
    standdowns = {
        name[len("batch.standdown."):]: entry["value"]
        for name, entry in snapshot.items()
        if name.startswith("batch.standdown.")
    }
    evictions = snapshot.get("batch.lanes.evicted", {}).get("value", 0)
    retries = snapshot.get("pool.retries", {}).get("value", 0)
    return {
        "evictions": evictions,
        "standdowns": standdowns,
        "retries": retries,
    }


class CampaignRunner:
    """Bind a spec to a store and an executor."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: Optional[ResultStore] = None,
        pool: Optional[TrialPool] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        progress: Optional[Callable[[str], None]] = None,
        policy: Optional[ResiliencePolicy] = None,
        max_failures: Optional[int] = None,
        trial_fn: Callable = run_trial,
        observer: Optional[Callable[[Dict], None]] = None,
        shard: Optional[Shard] = None,
        sink: Optional[Callable[[TrialRef, StoredOutcome], None]] = None,
        stream: Optional[Callable[[Dict], None]] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if max_failures is not None and max_failures < 0:
            raise ValueError("max_failures must be non-negative (or None)")
        self.spec = spec
        #: Restrict execution to one deterministic slice of the grid
        #: (``repro.distrib``): only the expansion positions the shard
        #: covers are considered, so ``run()`` fills exactly this
        #: shard's store segment and ``status()`` counts only its
        #: trials.  A sharded runner's report is *shard-local* (the
        #: uncovered coordinates look like missing data); the real
        #: artifact comes from merging every segment and collecting
        #: over the full spec.
        self.shard = shard
        self.store = store if store is not None else ResultStore()
        self.pool = pool
        self.batch_size = batch_size
        self.policy = policy
        self.max_failures = max_failures
        #: The worker-side trial function; overridable so chaos tests can
        #: sweep campaign-sized grids with a cheap stub.
        self.trial_fn = trial_fn
        self._progress = progress or (lambda message: None)
        #: Structured progress sink (``--progress`` installs a
        #: :class:`~repro.telemetry.live.ProgressRenderer` here).  Called
        #: after every checkpointed batch with a dict of counts; purely
        #: observational -- never touches results or the store.
        self._observer = observer or (lambda update: None)
        #: Per-trial outcome hook (the streaming-detector ingest path):
        #: called exactly once per ``(ref, outcome)`` -- for cached
        #: results in expansion order at the start of ``run()``, then for
        #: fresh outcomes in batch order after each checkpoint.  Like the
        #: observer it must never mutate results; consumers that need
        #: order-independent conclusions (detectors do) must make each
        #: ingestion a pure function of the single ``(ref, outcome)``.
        self._sink = sink or (lambda ref, outcome: None)
        #: Live telemetry spool hook (``campaign shard --stream-out``
        #: installs a :class:`~repro.telemetry.stream.StreamWriter`'s
        #: ``on_batch`` here).  Fired with the same structured update as
        #: the observer, after every checkpointed batch; the writer
        #: decides internally whether a cadence boundary was crossed.
        #: Purely observational -- never touches results or the store.
        self._stream = stream or (lambda update: None)

    # -- queries ---------------------------------------------------------------

    def _expand(self) -> Tuple[List[TrialRef], List[str]]:
        refs = self.spec.expand()
        if self.shard is not None:
            refs = [
                ref
                for position, ref in enumerate(refs)
                if self.shard.covers(position)
            ]
        keys = [trial_key(ref.trial) for ref in refs]
        return refs, keys

    def status(self) -> CampaignStatus:
        """Cached/pending accounting without executing anything."""
        refs, keys = self._expand()
        cached = self.store.get_many(keys)
        return CampaignStatus(
            name=self.spec.name, total=len(refs), cached=len(cached)
        )

    def collect(self) -> Optional[CampaignReport]:
        """The report, purely from the store; None if any trial is missing."""
        refs, keys = self._expand()
        cached = self.store.get_many(keys)
        if len(cached) < len(refs):
            return None
        return build_report(self.spec, refs, [cached[key] for key in keys])

    # -- execution -------------------------------------------------------------

    def _batches(self, pending: List[int], refs: List[TrialRef]):
        """Slice *pending* result indices into dispatch batches.

        Batches never straddle a cell boundary: every trial in a batch
        shares one (machine, attack, parameters) cell, so a worker keeps
        a single cached machine context hot for the whole batch and the
        pool's adaptive chunk estimate averages over homogeneous trials.
        Batch composition has no effect on results -- each trial is a
        pure function of its payload -- only on scheduling.
        """
        count = len(pending)
        start = 0
        for position in range(1, count + 1):
            if (
                position == count
                or position - start == self.batch_size
                or refs[pending[position]].cell != refs[pending[start]].cell
            ):
                yield pending[start:position]
                start = position

    def _run_pending(
        self,
        refs: List[TrialRef],
        keys: List[str],
        results: List[Optional[StoredOutcome]],
        pending: List[int],
        cells_total: int,
        executed_before: int,
    ) -> Tuple[int, int]:
        """Execute the pending delta; returns ``(executed, batches)``.

        Telemetry cell spans are opened when the batch stream enters a
        new cell and closed when it leaves (batches never straddle cell
        boundaries, so cells are contiguous runs of batches); worker
        trial spans ingest under the open cell span inside ``pool.map``.
        The structured observer fires after every checkpoint.
        """
        if not pending:
            return 0, 0
        pool = self.pool if self.pool is not None else TrialPool(workers=1)
        if self.policy is not None:
            pool.policy = self.policy
        observing = telemetry.enabled()
        failures = sum(
            1 for result in results if isinstance(result, TrialFailure)
        )
        batches = 0
        done = 0
        cell_span = None
        current_cell = None
        try:
            for batch in self._batches(pending, refs):
                cell = refs[batch[0]].cell
                if cell != current_cell:
                    if cell_span is not None:
                        cell_span.close()
                        telemetry.add("campaign.cells_done")
                    cell_span = telemetry.span("cell", cell=cell)
                    current_cell = cell
                outcomes = pool.map(
                    self.trial_fn, [refs[i].trial for i in batch]
                )
                # The checkpoint: a batch is durable before the next starts.
                checkpoint_start = time.perf_counter() if observing else None
                self.store.put_many(
                    (keys[i], outcome) for i, outcome in zip(batch, outcomes)
                )
                if checkpoint_start is not None:
                    telemetry.observe(
                        "campaign.checkpoint.fsync_seconds",
                        time.perf_counter() - checkpoint_start,
                        det=False,
                    )
                for i, outcome in zip(batch, outcomes):
                    results[i] = outcome
                    if isinstance(outcome, TrialFailure):
                        failures += 1
                    self._sink(refs[i], outcome)
                batches += 1
                done += len(batch)
                if observing:
                    telemetry.add("campaign.batches")
                    telemetry.add("campaign.trials.executed", len(batch))
                self._progress(
                    f"batch {batches}: {done}"
                    f"/{len(pending)} pending trials done"
                )
                update = {
                    "name": self.spec.name,
                    "done": done,
                    "pending": len(pending),
                    "total": len(refs),
                    "cached": len(refs) - len(pending),
                    "cell": cell,
                    "cells": cells_total,
                    "failures": failures,
                }
                if observing:
                    update.update(_live_batch_counts())
                self._observer(update)
                self._stream(update)
                if (
                    self.max_failures is not None
                    and failures > self.max_failures
                ):
                    # Checkpointed above: the abort loses nothing.
                    raise CampaignAborted(
                        f"{self.spec.name}: {failures} trial failures "
                        f"exceed --max-failures {self.max_failures} "
                        f"(progress checkpointed; rerun to resume)",
                        failures=failures,
                    )
        finally:
            if cell_span is not None:
                cell_span.close()
                telemetry.add("campaign.cells_done")
            if self.pool is None:
                pool.close()
        executed = pool.trials_executed - (
            executed_before if self.pool is not None else 0
        )
        return executed, batches

    def run(self) -> Tuple[CampaignReport, RunStats]:
        """Execute the delta, checkpointing per batch; return the report.

        Results are assembled in expansion order regardless of which
        trials came from the store and which ran live, so the report is
        identical to a cold serial run of the same spec.
        """
        start = time.perf_counter()
        refs, keys = self._expand()
        cached = self.store.get_many(keys)
        results: List[Optional[StoredOutcome]] = [cached.get(key) for key in keys]
        pending = [index for index, result in enumerate(results) if result is None]
        # Replayed outcomes reach the sink before any fresh execution, in
        # expansion order -- a resumed run streams every trial exactly once.
        for ref, result in zip(refs, results):
            if result is not None:
                self._sink(ref, result)
        executed_before = self.pool.trials_executed if self.pool else 0
        cells_total = len({ref.cell for ref in refs})
        if telemetry.enabled():
            telemetry.add("campaign.trials.cached", len(refs) - len(pending))
            total = len(refs)
            telemetry.gauge_set(
                "campaign.cache_hit_ratio",
                round((total - len(pending)) / total, 6) if total else 1.0,
            )
        with telemetry.span(
            "campaign.run",
            campaign=self.spec.name,
            total=len(refs),
            cached=len(refs) - len(pending),
            cells=cells_total,
            # Lockstep lanes per pack (1 = scalar dispatch).  Span-only:
            # batching is scheduling, so it must never reach the report
            # artifacts -- batched and scalar runs checksum identically.
            batch_size=getattr(self.pool, "batch_size", None) or 1,
        ):
            executed, batches = self._run_pending(
                refs, keys, results, pending, cells_total, executed_before
            )
        failures = sum(
            1 for result in results if isinstance(result, TrialFailure)
        )
        stats = RunStats(
            total=len(refs),
            cached=len(refs) - len(pending),
            executed=executed,
            batches=batches,
            wall_seconds=time.perf_counter() - start,
            failures=failures,
        )
        report = build_report(self.spec, refs, results)
        return report, stats
