"""The campaign runner: replay what is cached, execute only the delta.

``CampaignRunner.run()`` expands the spec into its deterministic trial
list, partitions it against the content-addressed store, fans the
pending trials across a :class:`~repro.runtime.TrialPool` in fixed-size
batches, and **checkpoints after every completed batch** by appending the
batch's results to the store.  Interrupt it anywhere -- Ctrl-C, a killed
CI job, a crashed host -- and the next ``run()`` picks up from the last
completed batch; the finished report is bit-identical to an
uninterrupted run because every trial's result is a pure function of its
payload.

The runner never writes wall-clock or provenance into the report; those
live in :class:`RunStats` (``executed`` counts live trials via
``TrialPool.trials_executed``, ``cached`` counts store replays).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.campaign.report import CampaignReport, build_report
from repro.campaign.spec import CampaignSpec, TrialRef
from repro.campaign.store import ResultStore, trial_key
from repro.runtime.pool import TrialPool
from repro.runtime.tasks import TrialResult, run_trial

DEFAULT_BATCH_SIZE = 128


@dataclass
class CampaignStatus:
    """How much of a campaign the store already holds."""

    name: str
    total: int
    cached: int

    @property
    def pending(self) -> int:
        return self.total - self.cached

    @property
    def hit_rate(self) -> float:
        return self.cached / self.total if self.total else 1.0

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.cached}/{self.total} trials cached "
            f"({self.hit_rate:.1%}), {self.pending} pending"
        )


@dataclass
class RunStats:
    """Execution provenance for one ``run()`` (never part of the artifact)."""

    total: int
    cached: int
    executed: int
    batches: int
    wall_seconds: float

    @property
    def hit_rate(self) -> float:
        return self.cached / self.total if self.total else 1.0

    def __str__(self) -> str:
        return (
            f"{self.total} trials: {self.cached} cached ({self.hit_rate:.1%}), "
            f"{self.executed} executed in {self.batches} batches, "
            f"{self.wall_seconds:.2f} s wall"
        )


class CampaignRunner:
    """Bind a spec to a store and an executor."""

    def __init__(
        self,
        spec: CampaignSpec,
        store: Optional[ResultStore] = None,
        pool: Optional[TrialPool] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        self.spec = spec
        self.store = store if store is not None else ResultStore()
        self.pool = pool
        self.batch_size = batch_size
        self._progress = progress or (lambda message: None)

    # -- queries ---------------------------------------------------------------

    def _expand(self) -> Tuple[List[TrialRef], List[str]]:
        refs = self.spec.expand()
        keys = [trial_key(ref.trial) for ref in refs]
        return refs, keys

    def status(self) -> CampaignStatus:
        """Cached/pending accounting without executing anything."""
        refs, keys = self._expand()
        cached = self.store.get_many(keys)
        return CampaignStatus(
            name=self.spec.name, total=len(refs), cached=len(cached)
        )

    def collect(self) -> Optional[CampaignReport]:
        """The report, purely from the store; None if any trial is missing."""
        refs, keys = self._expand()
        cached = self.store.get_many(keys)
        if len(cached) < len(refs):
            return None
        return build_report(self.spec, refs, [cached[key] for key in keys])

    # -- execution -------------------------------------------------------------

    def run(self) -> Tuple[CampaignReport, RunStats]:
        """Execute the delta, checkpointing per batch; return the report.

        Results are assembled in expansion order regardless of which
        trials came from the store and which ran live, so the report is
        identical to a cold serial run of the same spec.
        """
        start = time.perf_counter()
        refs, keys = self._expand()
        cached = self.store.get_many(keys)
        results: List[Optional[TrialResult]] = [cached.get(key) for key in keys]
        pending = [index for index, result in enumerate(results) if result is None]
        executed_before = self.pool.trials_executed if self.pool else 0
        batches = 0
        if pending:
            pool = self.pool if self.pool is not None else TrialPool(workers=1)
            try:
                for offset in range(0, len(pending), self.batch_size):
                    batch = pending[offset : offset + self.batch_size]
                    outcomes = pool.map(run_trial, [refs[i].trial for i in batch])
                    # The checkpoint: a batch is durable before the next starts.
                    self.store.put_many(
                        (keys[i], outcome) for i, outcome in zip(batch, outcomes)
                    )
                    for i, outcome in zip(batch, outcomes):
                        results[i] = outcome
                    batches += 1
                    self._progress(
                        f"batch {batches}: {min(offset + len(batch), len(pending))}"
                        f"/{len(pending)} pending trials done"
                    )
            finally:
                if self.pool is None:
                    pool.close()
            executed = pool.trials_executed - (
                executed_before if self.pool is not None else 0
            )
        else:
            executed = 0
        stats = RunStats(
            total=len(refs),
            cached=len(refs) - len(pending),
            executed=executed,
            batches=batches,
            wall_seconds=time.perf_counter() - start,
        )
        report = build_report(self.spec, refs, results)
        return report, stats
