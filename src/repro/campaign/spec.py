"""Declarative campaign specifications and their deterministic expansion.

A *campaign* is the unit the paper's evaluation is made of: a grid of
(machine x attack kind x parameters) cells, each of which samples one
statistic -- a TET-CC transmission decoded byte-by-byte, or a TET-KASLR
512-slot sweep classified into mapped/unmapped clusters.  A
:class:`CampaignSpec` freezes that grid as a value: it is hashable,
picklable, and expands into the exact same ordered list of trial
payloads on every host, every time (:meth:`CampaignSpec.expand`).

The expansion delegates to the attacks' own campaign adapters
(:meth:`TetCovertChannel.campaign_trials`,
:meth:`TetKaslr.campaign_trials`), so a campaign replay consumes the same
``(spec.seed, trial_index)`` seed stream a live ``pool=`` run would --
the property that lets the result store mix cached and freshly executed
trials without any statistical seam.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.runtime.spec import MachineSpec

#: Frozen parameter bag: sorted ``(key, value)`` pairs, values hashable.
Params = Tuple[Tuple[str, object], ...]

_CELL_KINDS = ("channel", "kaslr", "detect")


def freeze_params(params: Mapping[str, object]) -> Params:
    """Normalise a parameter mapping into a hashable, ordered tuple.

    Lists and ranges become tuples so cells stay hashable; insertion
    order is discarded (keys are sorted) so two spellings of the same
    cell hash identically.
    """
    frozen = []
    for key in sorted(params):
        value = params[key]
        if isinstance(value, (list, range)):
            value = tuple(value)
        frozen.append((key, value))
    return tuple(frozen)


@dataclass(frozen=True)
class CampaignCell:
    """One grid cell: a task kind bound to a machine recipe."""

    kind: str
    machine: MachineSpec
    params: Params = ()

    def __post_init__(self) -> None:
        if self.kind not in _CELL_KINDS:
            raise ValueError(
                f"cell kind must be one of {_CELL_KINDS}, not {self.kind!r}"
            )

    def param(self, key: str, default=None):
        """Look up one parameter (cells are tiny; linear scan is fine)."""
        for name, value in self.params:
            if name == key:
                return value
        return default


def channel_cell(
    machine: MachineSpec,
    payload: bytes,
    batches: int = 3,
    values: Sequence[int] = range(256),
    statistic: str = "vote",
    suppression: Optional[str] = None,
    repeats: int = 1,
) -> CampaignCell:
    """A TET-CC transmission cell: scan and decode *payload* on *machine*."""
    return CampaignCell(
        kind="channel",
        machine=machine,
        params=freeze_params(
            dict(
                payload=bytes(payload),
                batches=batches,
                values=values,
                statistic=statistic,
                suppression=suppression,
                repeats=repeats,
            )
        ),
    )


def kaslr_cell(
    machine: MachineSpec,
    strategy: str = "auto",
    eviction: str = "direct",
    suppression: Optional[str] = None,
    repeats: int = 1,
) -> CampaignCell:
    """A TET-KASLR cell: one (or *repeats*) full 512-slot sweeps."""
    return CampaignCell(
        kind="kaslr",
        machine=machine,
        params=freeze_params(
            dict(
                strategy=strategy,
                eviction=eviction,
                suppression=suppression,
                repeats=repeats,
            )
        ),
    )


def detect_cell(
    machine: MachineSpec,
    scenario: str,
    trials: int = 10,
    repeats: int = 1,
) -> CampaignCell:
    """A detector-evaluation cell: *trials* observation windows of one
    :mod:`repro.defend.scenarios` scenario on *machine*."""
    return CampaignCell(
        kind="detect",
        machine=machine,
        params=freeze_params(
            dict(scenario=scenario, trials=trials, repeats=repeats)
        ),
    )


@dataclass(frozen=True)
class Shard:
    """One slice of a campaign's deterministic expansion.

    A shard is pure arithmetic over expansion positions: shard ``index``
    of ``of`` covers exactly the trials whose position in
    :meth:`CampaignSpec.expand` is congruent to ``index`` modulo ``of``.
    Round-robin (rather than contiguous ranges) keeps every shard's
    workload balanced to within one trial *and* mixes every cell into
    every shard, so fleet progress is representative of the whole grid.

    Because assignment depends only on ``(position, of)``, the ``of``
    shards of any campaign are a disjoint exact cover of its trial list
    -- the invariant ``tests/test_distrib_properties.py`` pins -- and
    two hosts given the same ``(index, of)`` compute the same trial set
    without coordinating.
    """

    index: int
    of: int

    def __post_init__(self) -> None:
        if self.of < 1:
            raise ValueError(f"shard count must be at least 1, not {self.of}")
        if not 0 <= self.index < self.of:
            raise ValueError(
                f"shard index must be in [0, {self.of}), not {self.index}"
            )

    def covers(self, position: int) -> bool:
        """Whether expansion position *position* belongs to this shard."""
        return position % self.of == self.index

    def positions(self, total: int) -> range:
        """Every expansion position this shard covers, for *total* trials."""
        return range(self.index, total, self.of)

    def size(self, total: int) -> int:
        """How many of *total* trials this shard covers."""
        return len(self.positions(total))

    @property
    def label(self) -> str:
        return f"shard{self.index}of{self.of}"

    def __str__(self) -> str:
        return f"shard {self.index}/{self.of}"


@dataclass(frozen=True)
class TrialRef:
    """One expanded trial, addressed inside its campaign.

    ``cell`` indexes into the spec's cell tuple, ``rep`` counts the
    cell-level repetition, ``unit`` names the aggregation group the
    decoder consumes (``byte<N>`` for channel cells, ``sweep`` for KASLR
    cells, ``stream`` for detect cells) and ``coord`` is the decode
    coordinate inside that group (the test value, the KASLR slot, or the
    observation-window position).
    """

    cell: int
    rep: int
    unit: str
    coord: int
    trial: object  # ChannelTrial | KaslrTrial | DetectTrial (frozen, picklable)

    @property
    def label(self) -> str:
        """A stable human-readable address (used by report failure
        records): ``cell0/rep1/byte3@127``."""
        return f"cell{self.cell}/rep{self.rep}/{self.unit}@{self.coord}"


@dataclass(frozen=True)
class CampaignSpec:
    """A frozen, picklable description of one sampling campaign."""

    name: str
    cells: Tuple[CampaignCell, ...]

    @classmethod
    def grid(
        cls,
        name: str,
        machines: Iterable[MachineSpec],
        kinds: Sequence[str] = ("channel",),
        **params,
    ) -> "CampaignSpec":
        """The cross-product constructor: machines x kinds, shared params.

        Channel cells pick the channel-shaped parameters out of *params*
        (``payload``, ``batches``, ``values``, ``statistic``, ``repeats``),
        KASLR cells the sweep-shaped ones (``strategy``, ``eviction``,
        ``repeats``); unknown keys raise immediately.
        """
        channel_keys = {
            "payload", "batches", "values", "statistic", "suppression", "repeats",
        }
        kaslr_keys = {"strategy", "eviction", "suppression", "repeats"}
        detect_keys = {"scenario", "trials", "repeats"}
        unknown = set(params) - channel_keys - kaslr_keys - detect_keys
        if unknown:
            raise ValueError(f"unknown grid parameters: {sorted(unknown)}")
        cells: List[CampaignCell] = []
        for machine in machines:
            for kind in kinds:
                if kind == "channel":
                    picked = {k: v for k, v in params.items() if k in channel_keys}
                    cells.append(channel_cell(machine, **picked))
                elif kind == "kaslr":
                    picked = {k: v for k, v in params.items() if k in kaslr_keys}
                    cells.append(kaslr_cell(machine, **picked))
                elif kind == "detect":
                    picked = {k: v for k, v in params.items() if k in detect_keys}
                    cells.append(detect_cell(machine, **picked))
                else:
                    raise ValueError(f"unknown cell kind {kind!r}")
        return cls(name=name, cells=tuple(cells))

    def expand(self) -> List[TrialRef]:
        """The deterministic task list: every trial of every cell, in order.

        Trial indices restart at 0 per cell (each cell has its own
        machine, hence its own seed stream) and advance monotonically
        across that cell's repeats -- exactly as a live pooled channel or
        KASLR attack bound to that machine would allocate them.
        """
        refs: List[TrialRef] = []
        for cell_index, cell in enumerate(self.cells):
            expander = _EXPANDERS[cell.kind]
            refs.extend(expander(cell_index, cell))
        return refs

    def trial_count(self) -> int:
        """How many trials :meth:`expand` yields (without expanding)."""
        total = 0
        for cell in self.cells:
            repeats = cell.param("repeats", 1)
            if cell.kind == "channel":
                per_rep = len(cell.param("payload", b"")) * len(
                    cell.param("values", ())
                )
            elif cell.kind == "detect":
                per_rep = cell.param("trials", 10)
            else:
                from repro.kernel.layout import KASLR_SLOTS

                per_rep = KASLR_SLOTS
            total += repeats * per_rep
        return total


def _expand_channel(cell_index: int, cell: CampaignCell) -> List[TrialRef]:
    from repro.whisper.channel import TetCovertChannel

    payload = cell.param("payload")
    if not payload:
        raise ValueError(f"channel cell {cell_index} has an empty payload")
    refs: List[TrialRef] = []
    index = 0
    for rep in range(cell.param("repeats", 1)):
        pairs, index = TetCovertChannel.campaign_trials(
            cell.machine,
            payload,
            batches=cell.param("batches", 3),
            values=cell.param("values", tuple(range(256))),
            suppression=cell.param("suppression"),
            start_index=index,
        )
        for position, trial in pairs:
            refs.append(
                TrialRef(
                    cell=cell_index,
                    rep=rep,
                    unit=f"byte{position}",
                    coord=trial.test,
                    trial=trial,
                )
            )
    return refs


def _expand_kaslr(cell_index: int, cell: CampaignCell) -> List[TrialRef]:
    from repro.whisper.attacks.kaslr import TetKaslr

    refs: List[TrialRef] = []
    index = 0
    for rep in range(cell.param("repeats", 1)):
        pairs, index = TetKaslr.campaign_trials(
            cell.machine,
            strategy=cell.param("strategy", "auto"),
            eviction=cell.param("eviction", "direct"),
            suppression=cell.param("suppression"),
            start_index=index,
        )
        for slot, trial in pairs:
            refs.append(
                TrialRef(
                    cell=cell_index, rep=rep, unit="sweep", coord=slot, trial=trial
                )
            )
    return refs


def _expand_detect(cell_index: int, cell: CampaignCell) -> List[TrialRef]:
    from repro.runtime.tasks import DetectTrial

    scenario = cell.param("scenario")
    if not scenario:
        raise ValueError(f"detect cell {cell_index} names no scenario")
    trials = cell.param("trials", 10)
    refs: List[TrialRef] = []
    index = 0
    for rep in range(cell.param("repeats", 1)):
        for window in range(trials):
            refs.append(
                TrialRef(
                    cell=cell_index,
                    rep=rep,
                    unit="stream",
                    coord=window,
                    trial=DetectTrial(
                        spec=cell.machine, scenario=scenario, trial_index=index
                    ),
                )
            )
            index += 1
    return refs


_EXPANDERS: Dict[str, object] = {
    "channel": _expand_channel,
    "kaslr": _expand_kaslr,
    "detect": _expand_detect,
}
