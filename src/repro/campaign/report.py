"""Structured campaign run records and their rendered artifacts.

A :class:`CampaignReport` is built purely from ``(spec, expanded refs,
trial results)`` -- no wall-clock, no cache statistics, no hostnames --
so the artifact a campaign produces is *byte-identical* whether its
trials were freshly executed, fully replayed from the store, or any mix.
Execution provenance (cached vs live counts, wall time) lives in the
runner's :class:`~repro.campaign.runner.RunStats` instead and is printed,
never serialised into the artifact.

Two renderings: ``render_text()`` for humans, ``to_json()`` (stable key
order, fixed indentation) for machines -- the same shape the benchmark
harness emits as ``BENCH``-style JSON artifacts.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro import __version__ as REPRO_VERSION
from repro.campaign.spec import CampaignSpec, TrialRef
from repro.campaign.store import canonical_encode, spec_digest
from repro.kernel.kaslr import randomize_layout
from repro.runtime.tasks import TrialFailure, TrialResult
from repro.uarch.config import cpu_model
from repro.whisper.analysis import ArgExtremeDecoder, classify_bimodal

#: Version of the report artifact layout (``report.json`` /
#: ``reproduction_report.json``).  Bump on any key-level change to the
#: artifact shape.  Distributed merges refuse to combine segments whose
#: manifests disagree on this number -- statistical conclusions drawn
#: from a fleet are only trustworthy when every host aggregated under
#: the same report semantics.
REPORT_SCHEMA_VERSION = 1


@dataclass
class CampaignReport:
    """The deterministic record of one campaign's results."""

    name: str
    digest: str
    version: str
    cells: List[dict] = field(default_factory=list)

    def summary(self) -> dict:
        """Aggregate counters over all cells (part of the artifact)."""
        channel_cells = [c for c in self.cells if c["kind"] == "channel"]
        kaslr_cells = [c for c in self.cells if c["kind"] == "kaslr"]
        detect_cells = [c for c in self.cells if c["kind"] == "detect"]
        channel_reps = [rep for c in channel_cells for rep in c["reps"]]
        kaslr_reps = [rep for c in kaslr_cells for rep in c["reps"]]
        out = {
            "cells": len(self.cells),
            "trials": sum(c["trials"] for c in self.cells),
            "failures": sum(len(c["failures"]) for c in self.cells),
        }
        if detect_cells:
            out["detect"] = {
                "cells": len(detect_cells),
                "scenarios": sorted({c["scenario"] for c in detect_cells}),
                "windows": sum(
                    len(rep["windows"]) for c in detect_cells for rep in c["reps"]
                ),
            }
        if channel_reps:
            out["channel"] = {
                "transmissions": len(channel_reps),
                "clean": sum(1 for rep in channel_reps if rep["error_rate"] == 0.0),
                "mean_error_rate": sum(r["error_rate"] for r in channel_reps)
                / len(channel_reps),
            }
        if kaslr_reps:
            out["kaslr"] = {
                "sweeps": len(kaslr_reps),
                "broken": sum(1 for rep in kaslr_reps if rep["success"]),
            }
        return out

    def to_json_dict(self) -> dict:
        return {
            "campaign": self.name,
            "schema_version": REPORT_SCHEMA_VERSION,
            "spec_digest": self.digest,
            "repro_version": self.version,
            "summary": self.summary(),
            "cells": self.cells,
        }

    def to_json(self) -> str:
        """The machine-readable artifact (stable bytes for stable inputs)."""
        return json.dumps(self.to_json_dict(), sort_keys=True, indent=2) + "\n"

    def write_json(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as handle:
            handle.write(self.to_json())

    def render_text(self) -> str:
        """The human-readable artifact (also deterministic)."""
        lines = [
            f"campaign : {self.name}",
            f"spec     : {self.digest[:16]} (repro {self.version})",
            "",
        ]
        for cell in self.cells:
            lines.extend(_render_cell(cell))
        summary = self.summary()
        lines.append(
            f"total    : {summary['cells']} cells, {summary['trials']} trials"
        )
        if "channel" in summary:
            ch = summary["channel"]
            lines.append(
                f"channel  : {ch['clean']}/{ch['transmissions']} clean "
                f"transmissions, mean error {ch['mean_error_rate']:.2%}"
            )
        if "kaslr" in summary:
            ka = summary["kaslr"]
            lines.append(f"kaslr    : {ka['broken']}/{ka['sweeps']} sweeps broken")
        if "detect" in summary:
            de = summary["detect"]
            lines.append(
                f"detect   : {de['windows']} observation windows over "
                f"{len(de['scenarios'])} scenarios"
            )
        if summary["failures"]:
            lines.append(
                f"failures : {summary['failures']} trials quarantined "
                f"(see per-cell records)"
            )
        return "\n".join(lines) + "\n"

    def write_text(self, path: str) -> None:
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        with open(path, "w") as handle:
            handle.write(self.render_text())


#: Per-cell cap on individually rendered failures in the text artifact.
_RENDERED_FAILURES = 8


def render_run_observability(stats, metrics: Dict[str, dict]) -> str:
    """Console summary of a traced run: stats plus its metrics table.

    Printed to stderr after a ``campaign run --trace-out`` so a human
    sees the run's shape without replaying the trace.  Never part of the
    report artifact -- the artifact stays byte-identical with telemetry
    on or off.
    """
    import io

    from repro.telemetry.live import render_metrics

    buffer = io.StringIO()
    buffer.write(f"observability: {stats}\n")
    render_metrics(metrics, out=lambda line: buffer.write(line + "\n"))
    return buffer.getvalue().rstrip()


def _render_cell(cell: dict) -> List[str]:
    head = f"[cell {cell['cell']}] {cell['kind']} on {cell['model']}"
    lines = [head]
    if cell["kind"] == "channel":
        sent = cell["payload"]
        for rep in cell["reps"]:
            status = "ok" if rep["error_rate"] == 0.0 else "errors"
            lines.append(
                f"  rep {rep['rep']}: sent {sent} received {rep['received']} "
                f"error {rep['error_rate']:.2%} ({status})"
            )
        lines.append(
            f"  {cell['trials']} trials, {cell['cycles']:,} cycles "
            f"({cell['seconds']:.6f} s simulated, "
            f"{cell['bytes_per_second']:,.0f} B/s)"
        )
    elif cell["kind"] == "detect":
        head = (
            f"[cell {cell['cell']}] detect:{cell['scenario']} "
            f"({cell['taxonomy']}) on {cell['model']}"
        )
        lines[0] = head
        for rep in cell["reps"]:
            lines.append(
                f"  rep {rep['rep']}: {len(rep['windows'])} windows, "
                f"mean clflush/kuop {rep['mean_clflush_per_kilo_uop']:.2f}, "
                f"mean LLC-miss/kuop {rep['mean_llc_miss_per_kilo_uop']:.2f}, "
                f"mean clears/kuop {rep['mean_machine_clears_per_kilo_uop']:.2f}"
            )
        lines.append(
            f"  {cell['trials']} trials, {cell['cycles']:,} cycles "
            f"({cell['seconds']:.6f} s simulated)"
        )
    else:
        for rep in cell["reps"]:
            status = "BROKEN" if rep["success"] else "failed"
            found = rep["found_base"] if rep["found_base"] is not None else "none"
            lines.append(
                f"  rep {rep['rep']}: {cell['strategy']} {status}: found {found} "
                f"(true {rep['true_base']}, {len(rep['mapped_slots'])} mapped slots)"
            )
        lines.append(
            f"  {cell['trials']} trials, {cell['cycles']:,} cycles "
            f"({cell['seconds']:.6f} s simulated)"
        )
    failures = cell["failures"]
    if failures:
        shown = failures[:_RENDERED_FAILURES]
        lines.append(f"  {len(failures)} quarantined trials:")
        for failure in shown:
            faults = ",".join(failure["faults"])
            lines.append(
                f"    {failure['label']}: {failure['error']} "
                f"[{failure['attempts']} attempts: {faults}]"
            )
        if len(failures) > len(shown):
            lines.append(f"    ... and {len(failures) - len(shown)} more")
    lines.append("")
    return lines


def build_report(
    spec: CampaignSpec,
    refs: Sequence[TrialRef],
    results: Sequence[TrialResult],
) -> CampaignReport:
    """Aggregate ordered trial results into the campaign's report.

    *results* must align with *refs* (the expansion order).  The
    aggregation mirrors the live attacks: channel units decode through
    :class:`ArgExtremeDecoder`, KASLR sweeps classify through
    :func:`classify_bimodal` with ground truth recovered from the boot
    seed -- so a replayed campaign reports exactly what a live run would.

    Results may be :class:`~repro.runtime.tasks.TrialFailure` values
    (trials that failed every retry under a resilience policy).  Failures
    are excluded from decoding/classification and recorded in each cell's
    ``failures`` list; a channel byte with no surviving coordinates
    decodes to ``??`` and counts as an error, a KASLR sweep with no
    surviving probes reports no found base.  Since failure records are as
    deterministic as results, the artifact stays byte-identical across
    worker counts and resumes.
    """
    if len(refs) != len(results):
        raise ValueError(f"{len(refs)} refs but {len(results)} results")
    report = CampaignReport(
        name=spec.name, digest=spec_digest(spec), version=REPRO_VERSION
    )
    by_cell: Dict[int, List[Tuple[TrialRef, TrialResult]]] = {}
    for ref, result in zip(refs, results):
        by_cell.setdefault(ref.cell, []).append((ref, result))
    for cell_index, cell in enumerate(spec.cells):
        pairs = by_cell.get(cell_index, [])
        if cell.kind == "channel":
            record = _channel_record(cell_index, cell, pairs)
        elif cell.kind == "detect":
            record = _detect_record(cell_index, cell, pairs)
        else:
            record = _kaslr_record(cell_index, cell, pairs)
        report.cells.append(record)
    return report


def _machine_record(machine) -> dict:
    record = canonical_encode(machine)
    record.pop("__type__", None)
    return record


def _split_outcomes(pairs):
    """Partition (ref, outcome) pairs into successes and failure records.

    Failure records are sorted by ``(rep, unit, coord)`` -- never by
    completion order -- as part of the byte-identity contract.
    """
    ok: List[Tuple[TrialRef, TrialResult]] = []
    failures: List[dict] = []
    for ref, outcome in pairs:
        if isinstance(outcome, TrialFailure):
            failures.append(
                {
                    "rep": ref.rep,
                    "unit": ref.unit,
                    "coord": ref.coord,
                    "label": ref.label,
                    "attempts": outcome.attempts,
                    "faults": list(outcome.faults),
                    "error": outcome.error,
                }
            )
        else:
            ok.append((ref, outcome))
    failures.sort(key=lambda f: (f["rep"], f["unit"], f["coord"]))
    return ok, failures


def _channel_record(cell_index, cell, pairs) -> dict:
    payload: bytes = cell.param("payload")
    decoder = ArgExtremeDecoder("max", statistic=cell.param("statistic", "vote"))
    ok, failures = _split_outcomes(pairs)
    cycles = sum(result.cycles for _, result in ok)
    by_rep: Dict[int, Dict[str, Dict[int, List[int]]]] = {}
    for ref, _ in pairs:
        by_rep.setdefault(ref.rep, {})  # a fully-failed rep still reports
    for ref, result in ok:
        unit_totes = by_rep[ref.rep].setdefault(ref.unit, {})
        unit_totes[ref.coord] = list(result.totes)
    reps = []
    for rep in sorted(by_rep):
        scans = [
            decoder.decode(unit_totes) if unit_totes else None
            for unit_totes in (
                by_rep[rep].get(f"byte{position}", {})
                for position in range(len(payload))
            )
        ]
        received = "".join(
            f"{scan.value:02x}" if scan is not None else "??" for scan in scans
        )
        errors = sum(
            1
            for scan, sent in zip(scans, payload)
            if scan is None or scan.value != sent
        )
        reps.append(
            {
                "rep": rep,
                "received": received,
                "error_rate": errors / len(payload),
                "bytes": [
                    {"value": scan.value, "confidence": scan.confidence}
                    if scan is not None
                    else {"value": None, "confidence": 0.0}
                    for scan in scans
                ],
            }
        )
    model = cell.machine.model
    seconds = cpu_model(model).seconds(cycles)
    sent_bytes = len(payload) * max(len(reps), 1)
    return {
        "cell": cell_index,
        "kind": "channel",
        "model": model,
        "machine": _machine_record(cell.machine),
        "payload": payload.hex(),
        "batches": cell.param("batches", 3),
        "statistic": cell.param("statistic", "vote"),
        "test_values": len(cell.param("values", ())),
        "reps": reps,
        "failures": failures,
        "trials": len(pairs),
        "cycles": cycles,
        "seconds": seconds,
        "bytes_per_second": sent_bytes / seconds if seconds > 0 else 0.0,
    }


def _detect_record(cell_index, cell, pairs) -> dict:
    from repro.defend.features import FeatureVector
    from repro.defend.scenarios import get_scenario

    scenario = get_scenario(cell.param("scenario"))
    ok, failures = _split_outcomes(pairs)
    cycles = sum(result.cycles for _, result in ok)
    by_rep: Dict[int, Dict[int, FeatureVector]] = {}
    for ref, _ in pairs:
        by_rep.setdefault(ref.rep, {})  # a fully-failed rep still reports
    for ref, result in ok:
        by_rep[ref.rep][ref.coord] = FeatureVector.from_ints(result.totes)
    reps = []
    for rep in sorted(by_rep):
        windows = [
            {"coord": coord, "features": by_rep[rep][coord].to_dict()}
            for coord in sorted(by_rep[rep])
        ]
        vectors = [by_rep[rep][coord] for coord in sorted(by_rep[rep])]
        count = max(1, len(vectors))
        reps.append(
            {
                "rep": rep,
                "windows": windows,
                "mean_clflush_per_kilo_uop": sum(
                    v.clflush_per_kilo_uop for v in vectors
                )
                / count,
                "mean_llc_miss_per_kilo_uop": sum(
                    v.llc_miss_per_kilo_uop for v in vectors
                )
                / count,
                "mean_machine_clears_per_kilo_uop": sum(
                    v.machine_clears_per_kilo_uop for v in vectors
                )
                / count,
            }
        )
    model = cell.machine.model
    return {
        "cell": cell_index,
        "kind": "detect",
        "model": model,
        "machine": _machine_record(cell.machine),
        "scenario": scenario.name,
        "taxonomy": scenario.taxonomy,
        "attack": scenario.attack,
        "reps": reps,
        "failures": failures,
        "trials": len(pairs),
        "cycles": cycles,
        "seconds": cpu_model(model).seconds(cycles),
    }


def _kaslr_record(cell_index, cell, pairs) -> dict:
    from repro.kernel.layout import KASLR_SLOTS, slot_base
    from repro.whisper.attacks.kaslr import TetKaslr

    machine = cell.machine
    strategy, _, _ = TetKaslr.resolve_strategy(
        machine, cell.param("strategy", "auto")
    )
    true_base = randomize_layout(
        seed=machine.seed, kaslr=machine.kaslr, fgkaslr=machine.fgkaslr
    ).base
    ok, failures = _split_outcomes(pairs)
    cycles = sum(result.cycles for _, result in ok)
    by_rep: Dict[int, Dict[int, int]] = {}
    for ref, _ in pairs:
        by_rep.setdefault(ref.rep, {})  # a fully-failed rep still reports
    for ref, result in ok:
        by_rep[ref.rep][ref.coord] = result.totes[0]
    reps = []
    for rep in sorted(by_rep):
        totes = by_rep[rep]
        if totes:
            threshold, is_low = classify_bimodal(totes)
            mapped = sorted(slot for slot, low in is_low.items() if low)
        else:  # every probe in this sweep quarantined
            threshold, mapped = None, []
        found = None
        if 0 < len(mapped) < KASLR_SLOTS:
            found = slot_base(mapped[0])
        reps.append(
            {
                "rep": rep,
                "found_base": f"{found:#x}" if found is not None else None,
                "true_base": f"{true_base:#x}",
                "success": found == true_base,
                "mapped_slots": mapped,
                "threshold": threshold,
                "probes": 2 * len(totes),
            }
        )
    model = machine.model
    return {
        "cell": cell_index,
        "kind": "kaslr",
        "model": model,
        "machine": _machine_record(machine),
        "strategy": strategy,
        "eviction": cell.param("eviction", "direct"),
        "reps": reps,
        "failures": failures,
        "trials": len(pairs),
        "cycles": cycles,
        "seconds": cpu_model(model).seconds(cycles),
    }
