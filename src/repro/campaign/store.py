"""The content-addressed result store: trial outcomes keyed by meaning.

Every campaign trial is a pure function of its payload -- that is the
runtime determinism contract -- so its result can be cached forever under
a key that names the computation: a SHA-256 over the canonical JSON
encoding of ``(store format, repro version, trial payload)``.  Any change
that could change the outcome (CPU model, boot seed, batch count, test
value, eviction mode, a new repro release) changes the encoding and
therefore the key; re-running a campaign after an edit replays what is
still valid and executes only the delta.

On disk the store is one append-only JSONL file, ``results.jsonl`` under
the store root (default ``.campaigns/``).  Appending after every batch
is the runner's checkpoint mechanism: an interrupted sweep loses at most
the in-flight batch.  Every record carries a checksum over its body
(``sum``), so *any* on-disk damage -- a torn tail, a truncated line, a
single flipped bit inside an otherwise well-formed record -- is detected
at load time: the damaged record is skipped with a warning and its trial
simply re-executes.  Corruption can degrade to recomputation, never to a
silently wrong result (``tests/test_faults_properties.py`` injects
bit-flips and truncation through :class:`repro.faults.inject.FaultyStore`
to enforce exactly that).

Stored outcomes are either :class:`~repro.runtime.tasks.TrialResult`
(``"result"`` records) or :class:`~repro.runtime.tasks.TrialFailure`
(``"failure"`` records): a trial that failed every retry checkpoints its
structured failure under the same content address its success would have
used, which is what lets a resumed campaign replay failures instead of
re-poisoning itself.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro import __version__ as REPRO_VERSION
from repro.runtime.tasks import TrialFailure, TrialResult

#: Bump when the record layout changes; invalidates every cached result.
#: Format 2: per-record checksums + structured failure records.
STORE_FORMAT = 2

#: What a store holds per key.
StoredOutcome = Union[TrialResult, TrialFailure]

DEFAULT_ROOT = ".campaigns"


# -- canonical encoding --------------------------------------------------------


def canonical_encode(obj):
    """Reduce *obj* to a JSON-serialisable canonical form.

    Dataclasses carry their type name (two payload kinds with identical
    fields must not collide), bytes become hex, tuples become lists.
    The encoding is total over everything a campaign spec or trial
    payload contains.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            field.name: canonical_encode(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
        return {"__type__": type(obj).__name__, **fields}
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes__": bytes(obj).hex()}
    if isinstance(obj, (tuple, list)):
        return [canonical_encode(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): canonical_encode(value) for key, value in obj.items()}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonically encode {type(obj).__name__}")


def _digest(payload) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def trial_key(trial, version: str = REPRO_VERSION) -> str:
    """The content address of one trial's result.

    Keyed by the full trial payload plus the repro version: a new release
    may change simulator timing, so cached results never leak across
    versions.
    """
    return _digest(
        {
            "format": STORE_FORMAT,
            "version": version,
            "trial": canonical_encode(trial),
        }
    )


def spec_digest(spec) -> str:
    """A stable fingerprint of a whole campaign spec (for reports)."""
    return _digest(
        {"format": STORE_FORMAT, "version": REPRO_VERSION, "spec": canonical_encode(spec)}
    )


# -- record encoding -----------------------------------------------------------


def _outcome_body(outcome: StoredOutcome) -> dict:
    """The record body for one stored outcome (result or failure)."""
    if isinstance(outcome, TrialFailure):
        return {
            "failure": {
                "attempts": outcome.attempts,
                "faults": list(outcome.faults),
                "error": outcome.error,
            }
        }
    return {"result": {"totes": list(outcome.totes), "cycles": outcome.cycles}}


def _record_sum(key: str, body: dict) -> str:
    """The record checksum: SHA-256 over key + canonical body, truncated.

    Covers the content address *and* the outcome payload, so any damage
    that still parses as JSON -- a flipped bit in a stored value, or one
    in the key that would silently re-home the record under another
    trial's address -- fails verification at load time instead of
    replaying a wrong result.
    """
    text = json.dumps(
        {"key": key, **body}, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode()).hexdigest()[:16]


# -- the on-disk store ---------------------------------------------------------


class ResultStore:
    """Append-only JSONL store of checksummed ``key -> outcome`` records."""

    def __init__(self, root: str = DEFAULT_ROOT) -> None:
        self.root = root
        self.path = os.path.join(root, "results.jsonl")
        self._index: Optional[Dict[str, StoredOutcome]] = None

    # -- loading ---------------------------------------------------------------

    def _load(self) -> Dict[str, StoredOutcome]:
        if self._index is not None:
            return self._index
        index: Dict[str, StoredOutcome] = {}
        if os.path.exists(self.path):
            with open(self.path, "r") as handle:
                for lineno, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    record = self._parse_line(line, lineno)
                    if record is not None:
                        key, result = record
                        index[key] = result
        self._index = index
        return index

    def _parse_line(self, line: str, lineno: int):
        try:
            record = json.loads(line)
            key = record["key"]
            body = {
                field: record[field]
                for field in ("result", "failure")
                if field in record
            }
            if len(body) != 1:
                raise ValueError("record needs exactly one of result/failure")
            if record["sum"] != _record_sum(key, body):
                raise ValueError("record checksum mismatch")
            if "failure" in body:
                failure = body["failure"]
                outcome: StoredOutcome = TrialFailure(
                    attempts=int(failure["attempts"]),
                    faults=tuple(str(fault) for fault in failure["faults"]),
                    error=str(failure["error"]),
                )
            else:
                result = body["result"]
                outcome = TrialResult(
                    totes=tuple(int(t) for t in result["totes"]),
                    cycles=int(result["cycles"]),
                )
        except (ValueError, KeyError, TypeError) as exc:
            warnings.warn(
                f"{self.path}:{lineno}: skipping corrupt store record "
                f"({type(exc).__name__}: {exc}); its trial will re-execute",
                stacklevel=2,
            )
            return None
        return key, outcome

    # -- queries ---------------------------------------------------------------

    def get(self, key: str) -> Optional[StoredOutcome]:
        """The cached outcome under *key* (result or failure), or None."""
        return self._load().get(key)

    def get_many(self, keys: Iterable[str]) -> Dict[str, StoredOutcome]:
        """All cached outcomes among *keys*."""
        index = self._load()
        return {key: index[key] for key in keys if key in index}

    def __contains__(self, key: str) -> bool:
        return key in self._load()

    def __len__(self) -> int:
        return len(self._load())

    # -- writes ----------------------------------------------------------------

    def _encode_record(self, key: str, outcome: StoredOutcome) -> str:
        """One record as its on-disk line (no trailing newline).

        The seam fault injection hooks: :class:`repro.faults.inject.FaultyStore`
        overrides this to damage the bytes between encoding and disk.
        """
        body = _outcome_body(outcome)
        return json.dumps(
            {"key": key, **body, "sum": _record_sum(key, body)},
            sort_keys=True,
            separators=(",", ":"),
        )

    def put(self, key: str, outcome: StoredOutcome) -> None:
        """Record one outcome (appends and flushes -- a checkpoint)."""
        self.put_many([(key, outcome)])

    def put_many(self, records: Iterable[Tuple[str, StoredOutcome]]) -> None:
        """Append a batch of outcomes in one flush (the runner checkpoint)."""
        records = list(records)
        if not records:
            return
        index = self._load()
        os.makedirs(self.root, exist_ok=True)
        with open(self.path, "a") as handle:
            # Heal a torn tail before appending: a writer killed mid-record
            # leaves a partial line with no newline, and appending straight
            # onto it would corrupt the first new record too (costing a
            # second re-execution on the next resume).  Terminating the
            # tail confines the damage to the already-torn record.
            if handle.tell() > 0:
                with open(self.path, "rb") as reader:
                    reader.seek(-1, os.SEEK_END)
                    if reader.read(1) != b"\n":
                        handle.write("\n")
            for key, outcome in records:
                handle.write(self._encode_record(key, outcome) + "\n")
                index[key] = outcome
            handle.flush()
            os.fsync(handle.fileno())

    def clear(self) -> int:
        """Drop every cached result; returns how many were dropped."""
        dropped = len(self._load())
        if os.path.exists(self.path):
            os.remove(self.path)
        self._index = {}
        return dropped

    def __repr__(self) -> str:
        return f"ResultStore({self.root!r}, {len(self)} records)"
