"""The content-addressed result store: trial outcomes keyed by meaning.

Every campaign trial is a pure function of its payload -- that is the
runtime determinism contract -- so its result can be cached forever under
a key that names the computation: a SHA-256 over the canonical JSON
encoding of ``(store format, repro version, trial payload)``.  Any change
that could change the outcome (CPU model, boot seed, batch count, test
value, eviction mode, a new repro release) changes the encoding and
therefore the key; re-running a campaign after an edit replays what is
still valid and executes only the delta.

On disk the store is one append-only JSONL file, ``results.jsonl`` under
the store root (default ``.campaigns/``).  Appending after every batch
is the runner's checkpoint mechanism: an interrupted sweep loses at most
the in-flight batch.  Loading tolerates a torn tail or corrupted line --
the damaged record is skipped with a warning and its trial simply
re-executes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import warnings
from typing import Dict, Iterable, List, Optional, Tuple

from repro import __version__ as REPRO_VERSION
from repro.runtime.tasks import TrialResult

#: Bump when the record layout changes; invalidates every cached result.
STORE_FORMAT = 1

DEFAULT_ROOT = ".campaigns"


# -- canonical encoding --------------------------------------------------------


def canonical_encode(obj):
    """Reduce *obj* to a JSON-serialisable canonical form.

    Dataclasses carry their type name (two payload kinds with identical
    fields must not collide), bytes become hex, tuples become lists.
    The encoding is total over everything a campaign spec or trial
    payload contains.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            field.name: canonical_encode(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
        }
        return {"__type__": type(obj).__name__, **fields}
    if isinstance(obj, (bytes, bytearray)):
        return {"__bytes__": bytes(obj).hex()}
    if isinstance(obj, (tuple, list)):
        return [canonical_encode(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): canonical_encode(value) for key, value in obj.items()}
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot canonically encode {type(obj).__name__}")


def _digest(payload) -> str:
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def trial_key(trial, version: str = REPRO_VERSION) -> str:
    """The content address of one trial's result.

    Keyed by the full trial payload plus the repro version: a new release
    may change simulator timing, so cached results never leak across
    versions.
    """
    return _digest(
        {
            "format": STORE_FORMAT,
            "version": version,
            "trial": canonical_encode(trial),
        }
    )


def spec_digest(spec) -> str:
    """A stable fingerprint of a whole campaign spec (for reports)."""
    return _digest(
        {"format": STORE_FORMAT, "version": REPRO_VERSION, "spec": canonical_encode(spec)}
    )


# -- the on-disk store ---------------------------------------------------------


class ResultStore:
    """Append-only JSONL store of ``key -> TrialResult`` records."""

    def __init__(self, root: str = DEFAULT_ROOT) -> None:
        self.root = root
        self.path = os.path.join(root, "results.jsonl")
        self._index: Optional[Dict[str, TrialResult]] = None

    # -- loading ---------------------------------------------------------------

    def _load(self) -> Dict[str, TrialResult]:
        if self._index is not None:
            return self._index
        index: Dict[str, TrialResult] = {}
        if os.path.exists(self.path):
            with open(self.path, "r") as handle:
                for lineno, line in enumerate(handle, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    record = self._parse_line(line, lineno)
                    if record is not None:
                        key, result = record
                        index[key] = result
        self._index = index
        return index

    def _parse_line(self, line: str, lineno: int):
        try:
            record = json.loads(line)
            key = record["key"]
            result = record["result"]
            totes = tuple(int(t) for t in result["totes"])
            cycles = int(result["cycles"])
        except (ValueError, KeyError, TypeError) as exc:
            warnings.warn(
                f"{self.path}:{lineno}: skipping corrupt store record "
                f"({type(exc).__name__}: {exc}); its trial will re-execute",
                stacklevel=2,
            )
            return None
        return key, TrialResult(totes=totes, cycles=cycles)

    # -- queries ---------------------------------------------------------------

    def get(self, key: str) -> Optional[TrialResult]:
        """The cached result under *key*, or None."""
        return self._load().get(key)

    def get_many(self, keys: Iterable[str]) -> Dict[str, TrialResult]:
        """All cached results among *keys*."""
        index = self._load()
        return {key: index[key] for key in keys if key in index}

    def __contains__(self, key: str) -> bool:
        return key in self._load()

    def __len__(self) -> int:
        return len(self._load())

    # -- writes ----------------------------------------------------------------

    def put(self, key: str, result: TrialResult) -> None:
        """Record one result (appends and flushes -- a checkpoint)."""
        self.put_many([(key, result)])

    def put_many(self, records: Iterable[Tuple[str, TrialResult]]) -> None:
        """Append a batch of results in one flush (the runner checkpoint)."""
        records = list(records)
        if not records:
            return
        index = self._load()
        os.makedirs(self.root, exist_ok=True)
        with open(self.path, "a") as handle:
            for key, result in records:
                handle.write(
                    json.dumps(
                        {
                            "key": key,
                            "result": {
                                "totes": list(result.totes),
                                "cycles": result.cycles,
                            },
                        },
                        sort_keys=True,
                        separators=(",", ":"),
                    )
                    + "\n"
                )
                index[key] = result
            handle.flush()
            os.fsync(handle.fileno())

    def clear(self) -> int:
        """Drop every cached result; returns how many were dropped."""
        dropped = len(self._load())
        if os.path.exists(self.path):
            os.remove(self.path)
        self._index = {}
        return dropped

    def __repr__(self) -> str:
        return f"ResultStore({self.root!r}, {len(self)} records)"
